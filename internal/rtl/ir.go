// Package rtl provides a register-transfer-level intermediate
// representation (IR) for hardware accelerators, together with a
// cycle-accurate simulator.
//
// The IR plays the role that Yosys RTLIL plays in the paper "Execution
// Time Prediction for Energy-Efficient Hardware Accelerators" (MICRO
// 2015): accelerators are lowered to a flat netlist of combinational
// expression nodes, registers, and memories, and all downstream analyses
// (FSM detection, counter detection, feature instrumentation, hardware
// slicing) operate on that netlist structurally. Nothing in the IR tags
// a register as "an FSM" or "a counter"; those classifications are
// recovered by static analysis in package analyze.
//
// A netlist is a Module. Combinational logic is a DAG of Nodes in SSA
// form: every Node's arguments have smaller IDs than the Node itself,
// with registers (OpReg) acting as the only cycle breakers. Values are
// unsigned integers truncated to the node's bit width.
package rtl

import (
	"fmt"
	"math/bits"
)

// NodeID identifies a node within a Module. IDs are dense and start at 0.
type NodeID int32

// InvalidNode is the zero-like sentinel for "no node".
const InvalidNode NodeID = -1

// Op enumerates the combinational and state-holding operations of the IR.
type Op uint8

// The operation set is deliberately small: it is the least vocabulary in
// which realistic accelerator control and datapath logic can be lowered
// while keeping structural analyses tractable.
const (
	// OpConst is a literal. Const holds the value.
	OpConst Op = iota
	// OpInput is a module input port, driven by the testbench each cycle.
	OpInput
	// OpReg is the current value of a register. The register's next-value
	// expression and initial value live in the Module's Regs table.
	OpReg
	// Arithmetic. All operations are unsigned modulo 2^Width.
	OpAdd
	OpSub
	OpMul
	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr
	// Comparisons produce 0 or 1 in a 1-bit result.
	OpEq
	OpNe
	OpLt // unsigned <
	OpLe // unsigned <=
	// OpMux selects Args[1] when Args[0] is nonzero, else Args[2].
	OpMux
	// OpMemRead reads Mem at address Args[0] (combinational read port).
	OpMemRead
)

var opNames = [...]string{
	OpConst:   "const",
	OpInput:   "input",
	OpReg:     "reg",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpNot:     "not",
	OpShl:     "shl",
	OpShr:     "shr",
	OpEq:      "eq",
	OpNe:      "ne",
	OpLt:      "lt",
	OpLe:      "le",
	OpMux:     "mux",
	OpMemRead: "memread",
}

// String returns the lower-case mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumArgs returns the number of arguments the operation requires, or -1
// if the operation is variadic (none currently are).
func (o Op) NumArgs() int {
	switch o {
	case OpConst, OpInput, OpReg:
		return 0
	case OpNot:
		return 1
	case OpMux:
		return 3
	case OpMemRead:
		return 1
	default:
		return 2
	}
}

// Node is one vertex of the combinational netlist.
type Node struct {
	// Op is the operation computed by the node.
	Op Op
	// Width is the bit width of the result, 1..64. Results are truncated
	// to Width bits after every evaluation.
	Width uint8
	// Args are the operand node IDs. Their length matches Op.NumArgs.
	Args [3]NodeID
	// NArgs is the number of valid entries in Args.
	NArgs uint8
	// Const holds the literal value for OpConst.
	Const uint64
	// Mem indexes Module.Mems for OpMemRead.
	Mem int32
	// Src is 1 + the node's index into Module.Srcs, or 0 when the node
	// has no recorded source provenance. Frontends (the Verilog
	// elaborator) stamp nodes with the source line they were lowered
	// from so lint diagnostics can point back at HDL source.
	Src int32
	// Name is an optional debug name; analyses must not depend on it.
	Name string
}

// SrcLoc is a source provenance record: the HDL file (or module) and
// line a node was lowered from.
type SrcLoc struct {
	File string
	Line int
}

// String renders the location as file:line.
func (s SrcLoc) String() string { return fmt.Sprintf("%s:%d", s.File, s.Line) }

// Mask returns the bit mask corresponding to the node's width.
func (n *Node) Mask() uint64 { return WidthMask(n.Width) }

// WidthMask returns a mask with the low w bits set (w in 1..64).
func WidthMask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Reg describes one register (state element). Registers latch their Next
// value at the end of every cycle and expose the current value through
// an OpReg node.
type Reg struct {
	// Node is the OpReg node carrying the register's current value.
	Node NodeID
	// Next is the combinational next-value expression.
	Next NodeID
	// Init is the reset value.
	Init uint64
	// Name is an optional debug name; analyses must not depend on it.
	Name string
}

// Mem is a word-addressed memory (scratchpad). The testbench loads Data
// before a job starts; MemWrite ports may update it during execution.
type Mem struct {
	// Name identifies the memory for job encoding ("in", "out", ...).
	Name string
	// Words is the addressable size. Reads beyond Words return 0.
	Words int
	// Data is the backing store, resized to Words at simulation start.
	Data []uint64
	// ROM marks read-only memories (lookup tables baked into the design,
	// e.g. an S-box). ROM contents count toward area, not scratchpad.
	ROM bool
}

// MemWrite is a synchronous memory write port: when En evaluates nonzero
// at the end of a cycle, Data is stored at Addr.
type MemWrite struct {
	Mem  int32
	Addr NodeID
	Data NodeID
	En   NodeID
}

// Module is a complete netlist: a DAG of nodes plus register, memory and
// write-port tables. The simulator (Sim) executes it cycle by cycle.
type Module struct {
	// Name identifies the design in reports.
	Name string
	// Nodes is the SSA node table. For every non-register node, all
	// arguments have strictly smaller IDs.
	Nodes []Node
	// Regs lists the state elements.
	Regs []Reg
	// Mems lists the memories.
	Mems []*Mem
	// Writes lists synchronous memory write ports.
	Writes []MemWrite
	// Done is a 1-bit signal; the simulator stops after the cycle in
	// which Done evaluates nonzero.
	Done NodeID
	// Srcs is the source-provenance table referenced by Node.Src.
	// Empty for modules built directly against the IR.
	Srcs []SrcLoc
	// regOf maps an OpReg node back to its Regs index; built lazily.
	regOf map[NodeID]int
}

// SrcOf returns the source location a node was lowered from, if any.
func (m *Module) SrcOf(id NodeID) (SrcLoc, bool) {
	if id < 0 || int(id) >= len(m.Nodes) {
		return SrcLoc{}, false
	}
	s := m.Nodes[id].Src
	if s <= 0 || int(s) > len(m.Srcs) {
		return SrcLoc{}, false
	}
	return m.Srcs[s-1], true
}

// NumNodes returns the number of nodes in the netlist.
func (m *Module) NumNodes() int { return len(m.Nodes) }

// RegIndex returns the Regs index for an OpReg node, or -1.
func (m *Module) RegIndex(id NodeID) int {
	if m.regOf == nil {
		m.regOf = make(map[NodeID]int, len(m.Regs))
		for i := range m.Regs {
			m.regOf[m.Regs[i].Node] = i
		}
	}
	if i, ok := m.regOf[id]; ok {
		return i
	}
	return -1
}

// MemByName returns the memory with the given name, or nil.
func (m *Module) MemByName(name string) *Mem {
	for _, mem := range m.Mems {
		if mem.Name == name {
			return mem
		}
	}
	return nil
}

// invalidateCaches drops lazily built lookup tables after a mutation.
func (m *Module) invalidateCaches() { m.regOf = nil }

// Validate checks the structural invariants the simulator and the
// analyses rely on: argument counts per op, SSA ordering (arguments
// precede uses except through registers), width bounds, register and
// memory table consistency, and a reachable Done signal.
func (m *Module) Validate() error {
	if m.Done < 0 || int(m.Done) >= len(m.Nodes) {
		return fmt.Errorf("rtl: module %s: done signal %d out of range", m.Name, m.Done)
	}
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.Width == 0 || n.Width > 64 {
			return fmt.Errorf("rtl: module %s: node %d (%s) has width %d", m.Name, i, n.Op, n.Width)
		}
		want := n.Op.NumArgs()
		if int(n.NArgs) != want {
			return fmt.Errorf("rtl: module %s: node %d (%s) has %d args, want %d", m.Name, i, n.Op, n.NArgs, want)
		}
		for a := 0; a < int(n.NArgs); a++ {
			arg := n.Args[a]
			if arg < 0 || int(arg) >= len(m.Nodes) {
				return fmt.Errorf("rtl: module %s: node %d (%s) arg %d out of range", m.Name, i, n.Op, a)
			}
			if arg >= NodeID(i) && n.Op != OpReg {
				return fmt.Errorf("rtl: module %s: node %d (%s) uses later node %d (not SSA)", m.Name, i, n.Op, arg)
			}
		}
		if n.Op == OpMemRead {
			if n.Mem < 0 || int(n.Mem) >= len(m.Mems) {
				return fmt.Errorf("rtl: module %s: node %d reads invalid mem %d", m.Name, i, n.Mem)
			}
		}
	}
	seen := make(map[NodeID]bool, len(m.Regs))
	for i := range m.Regs {
		r := &m.Regs[i]
		if r.Node < 0 || int(r.Node) >= len(m.Nodes) || m.Nodes[r.Node].Op != OpReg {
			return fmt.Errorf("rtl: module %s: reg %d (%s) has invalid state node", m.Name, i, r.Name)
		}
		if r.Next < 0 || int(r.Next) >= len(m.Nodes) {
			return fmt.Errorf("rtl: module %s: reg %d (%s) has invalid next node", m.Name, i, r.Name)
		}
		if seen[r.Node] {
			return fmt.Errorf("rtl: module %s: reg node %d bound twice", m.Name, r.Node)
		}
		seen[r.Node] = true
		if init, mask := r.Init, m.Nodes[r.Node].Mask(); init&^mask != 0 {
			return fmt.Errorf("rtl: module %s: reg %d (%s) init %d exceeds width", m.Name, i, r.Name, init)
		}
	}
	for i := range m.Nodes {
		if m.Nodes[i].Op == OpReg && !seen[NodeID(i)] {
			return fmt.Errorf("rtl: module %s: OpReg node %d has no Regs entry", m.Name, i)
		}
	}
	for i, w := range m.Writes {
		if w.Mem < 0 || int(w.Mem) >= len(m.Mems) {
			return fmt.Errorf("rtl: module %s: write port %d targets invalid mem", m.Name, i)
		}
		if m.Mems[w.Mem].ROM {
			return fmt.Errorf("rtl: module %s: write port %d targets ROM %s", m.Name, i, m.Mems[w.Mem].Name)
		}
		for _, id := range [...]NodeID{w.Addr, w.Data, w.En} {
			if id < 0 || int(id) >= len(m.Nodes) {
				return fmt.Errorf("rtl: module %s: write port %d has invalid node", m.Name, i)
			}
		}
	}
	for _, mem := range m.Mems {
		if mem.Words <= 0 {
			return fmt.Errorf("rtl: module %s: mem %s has non-positive size", m.Name, mem.Name)
		}
	}
	return nil
}

// Uses returns, for each node, the list of nodes that consume it as an
// argument. Register next expressions and memory write ports are
// reported separately by callers that need them.
func (m *Module) Uses() [][]NodeID {
	uses := make([][]NodeID, len(m.Nodes))
	for i := range m.Nodes {
		n := &m.Nodes[i]
		for a := 0; a < int(n.NArgs); a++ {
			uses[n.Args[a]] = append(uses[n.Args[a]], NodeID(i))
		}
	}
	return uses
}

// EvalConst evaluates a node if its value is a compile-time constant
// (OpConst, or operations over constants). It returns (value, true) on
// success. It does not fold through registers, inputs, or memories.
func (m *Module) EvalConst(id NodeID) (uint64, bool) {
	n := &m.Nodes[id]
	switch n.Op {
	case OpConst:
		return n.Const & n.Mask(), true
	case OpInput, OpReg, OpMemRead:
		return 0, false
	}
	var vals [3]uint64
	for a := 0; a < int(n.NArgs); a++ {
		v, ok := m.EvalConst(n.Args[a])
		if !ok {
			return 0, false
		}
		vals[a] = v
	}
	return evalOp(n, vals), true
}

// EvalNode applies a combinational node's operation to
// already-evaluated argument values, truncating to the node's width —
// the single-node semantics every engine implements. Exported for the
// codegen translator (internal/rtl/codegen), whose constant folding
// must agree with the engines bit for bit. Panics on non-combinational
// ops (OpConst, OpInput, OpReg, OpMemRead).
func EvalNode(n *Node, v [3]uint64) uint64 { return evalOp(n, v) }

// evalOp applies a combinational operation to already-evaluated args.
func evalOp(n *Node, v [3]uint64) uint64 {
	var r uint64
	switch n.Op {
	case OpAdd:
		r = v[0] + v[1]
	case OpSub:
		r = v[0] - v[1]
	case OpMul:
		r = v[0] * v[1]
	case OpAnd:
		r = v[0] & v[1]
	case OpOr:
		r = v[0] | v[1]
	case OpXor:
		r = v[0] ^ v[1]
	case OpNot:
		r = ^v[0]
	case OpShl:
		if v[1] >= 64 {
			r = 0
		} else {
			r = v[0] << v[1]
		}
	case OpShr:
		if v[1] >= 64 {
			r = 0
		} else {
			r = v[0] >> v[1]
		}
	case OpEq:
		if v[0] == v[1] {
			r = 1
		}
	case OpNe:
		if v[0] != v[1] {
			r = 1
		}
	case OpLt:
		if v[0] < v[1] {
			r = 1
		}
	case OpLe:
		if v[0] <= v[1] {
			r = 1
		}
	case OpMux:
		if v[0] != 0 {
			r = v[1]
		} else {
			r = v[2]
		}
	default:
		panic(fmt.Sprintf("rtl: evalOp on %s", n.Op))
	}
	return r & n.Mask()
}

// WidthFor returns the minimum width able to represent v (at least 1).
func WidthFor(v uint64) uint8 {
	if v == 0 {
		return 1
	}
	return uint8(bits.Len64(v))
}
