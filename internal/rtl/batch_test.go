package rtl_test

import (
	"math/rand"
	"testing"

	"repro/internal/rtl"
	"repro/internal/testdesigns"
)

// compareLane fails on any observable divergence between one batch lane
// and its scalar interpreter reference: every node value, plus (when
// full is set) toggle counters and memory contents.
func compareLane(t *testing.T, m *rtl.Module, bs *rtl.BatchSim, lane int, ref *rtl.Sim, full bool) {
	t.Helper()
	for id := 0; id < m.NumNodes(); id++ {
		if bv, rv := bs.Value(lane, rtl.NodeID(id)), ref.Value(rtl.NodeID(id)); bv != rv {
			t.Fatalf("lane %d node %d (%s): batch %#x != interp %#x",
				lane, id, m.Nodes[id].Op, bv, rv)
		}
	}
	if !full {
		return
	}
	bt, rt := bs.Toggles(lane), ref.Toggles()
	for id := range rt {
		if bt[id] != rt[id] {
			t.Fatalf("lane %d node %d (%s): toggles batch %d != interp %d",
				lane, id, m.Nodes[id].Op, bt[id], rt[id])
		}
	}
	for _, mem := range m.Mems {
		bm, rm := bs.Mem(lane, mem.Name), ref.Mem(mem.Name)
		for a := range rm {
			if bm[a] != rm[a] {
				t.Fatalf("lane %d mem %s[%d]: batch %#x != interp %#x",
					lane, mem.Name, a, bm[a], rm[a])
			}
		}
	}
}

// TestBatchMatchesInterpOnRandomNetlists is the batch engine's
// differential property test: every lane of a BatchSim must be
// bit-exact with a scalar interpreter fed the same per-lane stimulus —
// including lanes that retire at different cycles, whose observables
// must freeze at their done cycle while the other lanes keep running.
func TestBatchMatchesInterpOnRandomNetlists(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	laneCounts := []int{1, 2, 7, 64}
	for trial := 0; trial < 16; trial++ {
		m := randModule(rng)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random module: %v", trial, err)
		}
		lanes := laneCounts[trial%len(laneCounts)]
		bs := rtl.NewBatchSim(m, lanes)
		bs.EnableActivity()
		refs := make([]*rtl.Sim, lanes)
		done := make([]bool, lanes)
		for l := range refs {
			refs[l] = rtl.NewInterpSim(m)
			refs[l].EnableActivity()
			load := make([]uint64, m.Mems[0].Words)
			for i := range load {
				load[i] = rng.Uint64()
			}
			if err := refs[l].LoadMem("in", load); err != nil {
				t.Fatal(err)
			}
			if err := bs.LoadMem(l, "in", load); err != nil {
				t.Fatal(err)
			}
		}
		ins := inputsOf(m)
		for cycle := 0; cycle < 60; cycle++ {
			for l := 0; l < lanes; l++ {
				if done[l] {
					continue
				}
				for _, id := range ins {
					v := rng.Uint64()
					refs[l].SetInput(id, v)
					bs.SetInput(l, id, v)
				}
			}
			all := bs.Step()
			for l := 0; l < lanes; l++ {
				if done[l] {
					continue
				}
				rd := refs[l].Step()
				if bs.Retired(l) != rd {
					t.Fatalf("trial %d cycle %d lane %d: retired=%v but interp done=%v",
						trial, cycle, l, bs.Retired(l), rd)
				}
				if rd {
					// The lane just froze: its snapshot, cycle count,
					// toggles and memories must match the reference at
					// its own done cycle, now and forever.
					done[l] = true
					if bs.LaneCycles(l) != refs[l].Cycles() {
						t.Fatalf("trial %d lane %d: cycles batch=%d interp=%d",
							trial, l, bs.LaneCycles(l), refs[l].Cycles())
					}
					compareLane(t, m, bs, l, refs[l], true)
				} else {
					compareLane(t, m, bs, l, refs[l], false)
				}
			}
			if all {
				break
			}
		}
		// Lanes still running at the horizon: full live comparison.
		for l := 0; l < lanes; l++ {
			if !done[l] {
				compareLane(t, m, bs, l, refs[l], true)
			}
		}
	}
}

// TestBatchMatchesOnToyJobs runs ragged batches of real Toy jobs (item
// counts differ per lane, so completion cycles differ) through Run and
// checks per-lane cycle counts, values, toggles and memories against
// scalar runs — the exact shape of the core training fan-out.
func TestBatchMatchesOnToyJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	toy := testdesigns.Toy()
	plan := rtl.PlanBatch(toy.M, nil)
	if plan.Groups() == 0 {
		t.Fatal("expected Toy's multi-bit FSM state register to be bit-sliced")
	}
	for _, lanes := range []int{1, 5, 33, 64} {
		bs := plan.NewBatchSim(lanes)
		bs.EnableActivity()
		jobs := make([][]uint64, lanes)
		want := make([]uint64, lanes)
		for l := range jobs {
			items := make([]uint64, 1+rng.Intn(30))
			for i := range items {
				items[i] = testdesigns.ToyItem(rng.Intn(2) == 0, uint8(rng.Intn(200)))
			}
			jobs[l] = testdesigns.ToyJob(items)
			want[l] = testdesigns.ToyCycles(items)
			if err := bs.LoadMem(l, "in", jobs[l]); err != nil {
				t.Fatal(err)
			}
		}
		if err := bs.Run(1 << 20); err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		for l := 0; l < lanes; l++ {
			if err := bs.LaneErr(l); err != nil {
				t.Fatalf("lanes=%d lane %d: %v", lanes, l, err)
			}
			if bs.LaneCycles(l) != want[l] {
				t.Fatalf("lanes=%d lane %d: cycles=%d want=%d", lanes, l, bs.LaneCycles(l), want[l])
			}
			ref := rtl.NewInterpSim(toy.M)
			ref.EnableActivity()
			if err := ref.LoadMem("in", jobs[l]); err != nil {
				t.Fatal(err)
			}
			if _, err := ref.Run(1 << 20); err != nil {
				t.Fatal(err)
			}
			compareLane(t, toy.M, bs, l, ref, true)
		}
	}
}

// TestBatchCloneIsIndependent mirrors TestCloneIsIndependent for the
// batch engine: a clone starts fresh, shares no writable memory with
// its parent, inherits activity tracking, and reproduces results.
func TestBatchCloneIsIndependent(t *testing.T) {
	toy := testdesigns.Toy()
	items := []uint64{testdesigns.ToyItem(false, 0), testdesigns.ToyItem(true, 9)}
	job := testdesigns.ToyJob(items)

	bs := rtl.NewBatchSim(toy.M, 2)
	bs.EnableActivity()
	c := bs.Clone()
	if c.Toggles(0) == nil {
		t.Fatal("clone did not inherit activity tracking")
	}
	if c.Engine() != rtl.EngineBatch || bs.Engine() != rtl.EngineBatch {
		t.Fatalf("engine %s / %s, want batch", bs.Engine(), c.Engine())
	}
	if err := bs.LoadMem(0, "in", job); err != nil {
		t.Fatal(err)
	}
	if got := c.Mem(0, "in")[0]; got != 0 {
		t.Fatalf("clone saw parent's LoadMem: in[0]=%d", got)
	}
	for _, s := range []*rtl.BatchSim{bs, c} {
		for l := 0; l < 2; l++ {
			if err := s.LoadMem(l, "in", job); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(1 << 20); err != nil {
			t.Fatal(err)
		}
		want := testdesigns.ToyCycles(items)
		for l := 0; l < 2; l++ {
			if s.LaneCycles(l) != want {
				t.Fatalf("lane %d cycles=%d want=%d", l, s.LaneCycles(l), want)
			}
		}
	}
}

// TestBatchRunTimeout checks the cycle-limit path: lanes that cannot
// finish get ErrNoProgress recorded, and the simulator stays usable
// after a Reset.
func TestBatchRunTimeout(t *testing.T) {
	toy := testdesigns.Toy()
	bs := rtl.NewBatchSim(toy.M, 2)
	job := testdesigns.ToyJob([]uint64{testdesigns.ToyItem(true, 30)})
	for l := 0; l < 2; l++ {
		if err := bs.LoadMem(l, "in", job); err != nil {
			t.Fatal(err)
		}
	}
	// One cycle is never enough to process an item.
	if err := bs.Run(1); err == nil {
		t.Fatal("expected timeout error")
	}
	for l := 0; l < 2; l++ {
		if bs.LaneErr(l) == nil {
			t.Fatalf("lane %d: want ErrNoProgress", l)
		}
	}
	bs.Reset()
	for l := 0; l < 2; l++ {
		if bs.LaneErr(l) != nil {
			t.Fatalf("lane %d: error survived Reset", l)
		}
		if err := bs.LoadMem(l, "in", job); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Run(1 << 20); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

// TestBatchMatchesOnHandFSM covers the input-driven path: the
// hand-lowered 1-bit FSM (whose control logic lowers entirely to plane
// word ops) is stepped with per-lane random stimulus.
func TestBatchMatchesOnHandFSM(t *testing.T) {
	m, _ := testdesigns.HandFSM()
	plan := rtl.PlanBatch(m, nil)
	rng := rand.New(rand.NewSource(99))
	lanes := 17
	bs := plan.NewBatchSim(lanes)
	bs.EnableActivity()
	refs := make([]*rtl.Sim, lanes)
	for l := range refs {
		refs[l] = rtl.NewInterpSim(m)
		refs[l].EnableActivity()
	}
	done := make([]bool, lanes)
	ins := inputsOf(m)
	for cycle := 0; cycle < 120; cycle++ {
		for l := 0; l < lanes; l++ {
			if done[l] {
				continue
			}
			for _, id := range ins {
				v := rng.Uint64()
				refs[l].SetInput(id, v)
				bs.SetInput(l, id, v)
			}
		}
		all := bs.Step()
		for l := 0; l < lanes; l++ {
			if done[l] {
				continue
			}
			rd := refs[l].Step()
			if bs.Retired(l) != rd {
				t.Fatalf("cycle %d lane %d: retired=%v but interp done=%v", cycle, l, bs.Retired(l), rd)
			}
			if rd {
				done[l] = true
				compareLane(t, m, bs, l, refs[l], true)
			} else {
				compareLane(t, m, bs, l, refs[l], false)
			}
		}
		if all {
			break
		}
	}
	for l := 0; l < lanes; l++ {
		if !done[l] {
			compareLane(t, m, bs, l, refs[l], true)
		}
	}
}
