package rtl

import "fmt"

// FSMBuilder lowers a textbook finite state machine — a state register
// plus a transition table — into plain mux-tree logic. The lowered form
// contains no FSM metadata: package analyze must (and does) rediscover
// the machine structurally, exactly as the paper's Yosys-based flow
// rediscovers FSMs in third-party RTL.
//
// Transitions for each source state are evaluated in the order added;
// the first one whose condition holds wins, and a state with no matching
// transition holds (self-loop).
type FSMBuilder struct {
	b         *Builder
	name      string
	state     RegSignal
	numStates uint64
	trans     map[uint64][]fsmTransition
	built     bool
}

type fsmTransition struct {
	cond   Signal // 1-bit; InvalidNode sentinel via condValid=false means unconditional
	hasCnd bool
	target uint64
}

// FSM starts a state machine with the given number of states, resetting
// to state 0. The state register is sized to fit numStates-1.
func (b *Builder) FSM(name string, numStates uint64) *FSMBuilder {
	if numStates < 2 {
		panic(fmt.Sprintf("rtl: fsm %s needs at least 2 states", name))
	}
	w := WidthFor(numStates - 1)
	st := b.Reg(name, w, 0)
	return &FSMBuilder{
		b:         b,
		name:      name,
		state:     st,
		numStates: numStates,
		trans:     make(map[uint64][]fsmTransition),
	}
}

// State returns the state register's current-value signal.
func (f *FSMBuilder) State() Signal { return f.state.Signal }

// In returns a 1-bit signal that is high while the machine is in state s.
func (f *FSMBuilder) In(s uint64) Signal { return f.state.EqK(s) }

// When adds a conditional transition src --cond--> dst.
func (f *FSMBuilder) When(src uint64, cond Signal, dst uint64) *FSMBuilder {
	f.check(src, dst)
	f.trans[src] = append(f.trans[src], fsmTransition{cond: cond, hasCnd: true, target: dst})
	return f
}

// Always adds an unconditional transition src --> dst. It must be the
// last transition added for src.
func (f *FSMBuilder) Always(src, dst uint64) *FSMBuilder {
	f.check(src, dst)
	f.trans[src] = append(f.trans[src], fsmTransition{target: dst})
	return f
}

func (f *FSMBuilder) check(src, dst uint64) {
	if f.built {
		panic(fmt.Sprintf("rtl: fsm %s: transition added after Build", f.name))
	}
	if src >= f.numStates || dst >= f.numStates {
		f.b.fsmErr = fmt.Errorf("rtl: fsm %s: transition %d->%d out of range", f.name, src, dst)
	}
	if ts := f.trans[src]; len(ts) > 0 && !ts[len(ts)-1].hasCnd {
		f.b.fsmErr = fmt.Errorf("rtl: fsm %s: transition after unconditional one in state %d", f.name, src)
	}
}

// Build lowers the transition table to a mux tree and binds it as the
// state register's next value. It returns the state signal.
func (f *FSMBuilder) Build() Signal {
	if f.built {
		panic(fmt.Sprintf("rtl: fsm %s: Build called twice", f.name))
	}
	f.built = true
	b := f.b
	w := f.state.Width()
	// next = mux(state==0, next0, mux(state==1, next1, ... state))
	next := f.state.Signal // unreachable fallback: hold
	for s := int64(f.numStates) - 1; s >= 0; s-- {
		ts := f.trans[uint64(s)]
		// Per-state next: fold transitions right to left; default hold.
		stNext := f.state.Signal
		for i := len(ts) - 1; i >= 0; i-- {
			t := ts[i]
			tgt := b.Const(t.target, w)
			if !t.hasCnd {
				stNext = tgt
				continue
			}
			stNext = t.cond.Mux(tgt, stNext)
		}
		if len(ts) == 0 {
			continue // pure hold state; no mux level needed
		}
		next = f.In(uint64(s)).Mux(stNext, next)
	}
	b.SetNext(f.state, next)
	return f.state.Signal
}

// DownCounter builds the canonical variable-latency idiom of the paper:
// a register that loads loadVal when load is high, otherwise decrements
// toward zero and holds at zero. Its "counting done" condition is
// Sig.IsZero(). The lowered netlist is plain mux logic; package analyze
// re-derives counter-ness, direction, and the load criteria structurally.
func (b *Builder) DownCounter(name string, width uint8, load, loadVal Signal) RegSignal {
	c := b.Reg(name, width, 0)
	dec := c.NonZero().Mux(c.Dec(), c.Signal)
	b.SetNext(c, load.Mux(loadVal.Trunc(width), dec))
	return c
}

// UpCounter builds an incrementing counter: it resets to zero when clear
// is high, otherwise adds one while en is high.
func (b *Builder) UpCounter(name string, width uint8, clear, en Signal) RegSignal {
	c := b.Reg(name, width, 0)
	inc := en.Mux(c.Inc(), c.Signal)
	b.SetNext(c, clear.Mux(b.Const(0, width), inc))
	return c
}

// Accum builds an accumulator register: when en is high it adds v,
// otherwise it holds. Used by the instrumentation pass for feature
// witnesses, and occasionally by datapaths.
func (b *Builder) Accum(name string, width uint8, en, v Signal) RegSignal {
	a := b.Reg(name, width, 0)
	b.SetNext(a, en.Mux(a.AddW(v, width), a.Signal))
	return a
}
