package rtl

import (
	"testing"
	"testing/quick"
)

func TestWidthMask(t *testing.T) {
	cases := []struct {
		w    uint8
		want uint64
	}{
		{1, 1},
		{2, 3},
		{8, 0xff},
		{16, 0xffff},
		{32, 0xffffffff},
		{63, (uint64(1) << 63) - 1},
		{64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := WidthMask(c.w); got != c.want {
			t.Errorf("WidthMask(%d) = %#x, want %#x", c.w, got, c.want)
		}
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct {
		v    uint64
		want uint8
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := WidthFor(c.v); got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestOpNumArgs(t *testing.T) {
	for op := OpConst; op <= OpMemRead; op++ {
		n := op.NumArgs()
		if n < 0 || n > 3 {
			t.Errorf("op %s reports %d args", op, n)
		}
	}
	if OpMux.NumArgs() != 3 {
		t.Errorf("mux args = %d", OpMux.NumArgs())
	}
	if OpNot.NumArgs() != 1 {
		t.Errorf("not args = %d", OpNot.NumArgs())
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpMux.String() != "mux" {
		t.Errorf("op names wrong: %s %s", OpAdd, OpMux)
	}
	if s := Op(200).String(); s == "" {
		t.Error("unknown op produced empty string")
	}
}

// buildArith constructs a module computing a small arithmetic circuit so
// value semantics can be spot-checked against Go's integer arithmetic.
func buildArith(t *testing.T) (*Module, NodeID, NodeID, NodeID) {
	t.Helper()
	b := NewBuilder("arith")
	x := b.Input("x", 16)
	y := b.Input("y", 16)
	sum := x.Add(y)
	diff := x.Sub(y)
	prod := x.Mul(y, 32)
	done := b.Const(1, 1)
	b.SetDone(done)
	// Keep results referenced via registers so nothing is dead.
	rs := b.Reg("rs", 16, 0)
	b.SetNext(rs, sum)
	rd := b.Reg("rd", 16, 0)
	b.SetNext(rd, diff)
	rp := b.Reg("rp", 32, 0)
	b.SetNext(rp, prod)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m, x.ID(), y.ID(), sum.ID()
}

func TestSimArithmetic(t *testing.T) {
	m, xid, yid, _ := buildArith(t)
	s := NewSim(m)
	f := func(x, y uint16) bool {
		s.Reset()
		s.SetInput(xid, uint64(x))
		s.SetInput(yid, uint64(y))
		s.Step()
		okSum := s.RegValue(0) == uint64(x+y)
		okDiff := s.RegValue(1) == uint64(x-y)
		okProd := s.RegValue(2) == (uint64(x)*uint64(y))&0xffffffff
		return okSum && okDiff && okProd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimComparisons(t *testing.T) {
	b := NewBuilder("cmp")
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	outs := []Signal{x.Eq(y), x.Ne(y), x.Lt(y), x.Le(y), x.Gt(y), x.Ge(y)}
	for i, o := range outs {
		r := b.Reg("r", 1, 0)
		b.SetNext(r, o)
		_ = i
	}
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	s := NewSim(m)
	f := func(x8, y8 uint8) bool {
		s.Reset()
		s.SetInput(m.Nodes[0].Args[0], 0) // no-op; inputs found below
		// Inputs are nodes 0 and 1 by construction order.
		s.SetInput(0, uint64(x8))
		s.SetInput(1, uint64(y8))
		s.Step()
		want := []bool{x8 == y8, x8 != y8, x8 < y8, x8 <= y8, x8 > y8, x8 >= y8}
		for i, w := range want {
			got := s.RegValue(i) != 0
			if got != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimShiftLogic(t *testing.T) {
	b := NewBuilder("shift")
	x := b.Input("x", 32)
	k := b.Input("k", 6)
	regs := []Signal{
		x.Shl(k), x.Shr(k), x.Not(), x.And(x.Not()), x.Or(x.Not()), x.Xor(x),
	}
	for _, o := range regs {
		r := b.Reg("r", o.Width(), 0)
		b.SetNext(r, o)
	}
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	s := NewSim(m)
	f := func(x32 uint32, k6 uint8) bool {
		k6 &= 63
		s.Reset()
		s.SetInput(0, uint64(x32))
		s.SetInput(1, uint64(k6))
		s.Step()
		mask := uint64(0xffffffff)
		want := []uint64{
			(uint64(x32) << k6) & mask,
			uint64(x32) >> k6,
			^uint64(x32) & mask,
			uint64(x32) & ^uint64(x32) & mask,
			(uint64(x32) | (^uint64(x32) & mask)) & mask,
			0,
		}
		for i, w := range want {
			if s.RegValue(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegisterLatchesAtCycleEnd(t *testing.T) {
	// A two-stage pipeline must delay by exactly two cycles.
	b := NewBuilder("pipe")
	x := b.Input("x", 8)
	s1 := b.Reg("s1", 8, 0)
	b.SetNext(s1, x)
	s2 := b.Reg("s2", 8, 0)
	b.SetNext(s2, s1.Signal)
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	sim := NewSim(m)
	sim.SetInput(x.ID(), 42)
	sim.Step()
	if sim.RegValue(1) != 0 {
		t.Fatalf("s2 after 1 cycle = %d, want 0", sim.RegValue(1))
	}
	sim.Step()
	if sim.RegValue(1) != 42 {
		t.Fatalf("s2 after 2 cycles = %d, want 42", sim.RegValue(1))
	}
}

func TestMemoryReadWrite(t *testing.T) {
	b := NewBuilder("mem")
	mem := b.Memory("buf", 16)
	addr := b.Reg("addr", 4, 0)
	b.SetNext(addr, addr.Inc())
	data := b.Read(mem, addr.Signal, 32)
	_ = b.Accum("acc", 32, b.Const(1, 1), data)
	// Write addr*2 back to a second memory.
	out := b.Memory("out", 16)
	b.Write(out, addr.Signal, data.ShlK(1), b.Const(1, 1))
	done := addr.EqK(15)
	b.SetDone(done)
	m := b.MustBuild()
	s := NewSim(m)
	in := make([]uint64, 16)
	var want uint64
	for i := range in {
		in[i] = uint64(i * 3)
		want += in[i]
	}
	if err := s.LoadMem("buf", in); err != nil {
		t.Fatal(err)
	}
	cycles, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 16 {
		t.Errorf("cycles = %d, want 16", cycles)
	}
	if got := s.RegValue(int(1)); got != want {
		t.Errorf("acc = %d, want %d", got, want)
	}
	outData := s.Mem("out")
	for i := 0; i < 16; i++ {
		if outData[i] != in[i]*2 {
			t.Errorf("out[%d] = %d, want %d", i, outData[i], in[i]*2)
		}
	}
}

func TestROMRead(t *testing.T) {
	b := NewBuilder("rom")
	rom := b.ROM("sbox", []uint64{7, 11, 13, 17})
	a := b.Input("a", 2)
	v := b.Read(rom, a, 8)
	r := b.Reg("r", 8, 0)
	b.SetNext(r, v)
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	s := NewSim(m)
	for i, want := range []uint64{7, 11, 13, 17} {
		s.SetInput(a.ID(), uint64(i))
		s.Step()
		if got := s.RegValue(0); got != want {
			t.Errorf("rom[%d] = %d, want %d", i, got, want)
		}
	}
	// ROM contents must survive Reset.
	s.Reset()
	s.SetInput(a.ID(), 3)
	s.Step()
	if got := s.RegValue(0); got != 17 {
		t.Errorf("rom[3] after reset = %d, want 17", got)
	}
}

func TestOutOfRangeMemAccess(t *testing.T) {
	b := NewBuilder("oob")
	mem := b.Memory("buf", 4)
	a := b.Input("a", 8)
	v := b.Read(mem, a, 32)
	r := b.Reg("r", 32, 5)
	b.SetNext(r, v)
	b.Write(mem, a, b.Const(9, 32), b.Const(1, 1))
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	s := NewSim(m)
	s.SetInput(a.ID(), 200) // out of range: read 0, write dropped
	s.Step()
	if got := s.RegValue(0); got != 0 {
		t.Errorf("oob read = %d, want 0", got)
	}
	for i, w := range s.Mem("buf") {
		if w != 0 {
			t.Errorf("buf[%d] = %d after oob write, want 0", i, w)
		}
	}
}

func TestRunHitsLimit(t *testing.T) {
	b := NewBuilder("forever")
	b.SetDone(b.Const(0, 1))
	m := b.MustBuild()
	s := NewSim(m)
	if _, err := s.Run(10); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}

func TestResetRestoresState(t *testing.T) {
	b := NewBuilder("reset")
	c := b.Reg("c", 8, 3)
	b.SetNext(c, c.Inc())
	b.SetDone(c.EqK(10))
	m := b.MustBuild()
	s := NewSim(m)
	n1, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	n2, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Errorf("run lengths differ after reset: %d vs %d", n1, n2)
	}
	if s.Cycles() != n2 {
		t.Errorf("Cycles() = %d, want %d", s.Cycles(), n2)
	}
}

func TestSimDeterminism(t *testing.T) {
	m, xid, yid, _ := buildArith(t)
	s1 := NewSim(m)
	s2 := NewSim(m)
	for _, s := range []*Sim{s1, s2} {
		s.SetInput(xid, 1234)
		s.SetInput(yid, 567)
		s.Step()
		s.Step()
	}
	for i := 0; i < 3; i++ {
		if s1.RegValue(i) != s2.RegValue(i) {
			t.Errorf("reg %d differs between identical runs", i)
		}
	}
}

func TestValidateCatchesBadModules(t *testing.T) {
	// Non-SSA argument ordering.
	m := &Module{
		Name: "bad",
		Nodes: []Node{
			{Op: OpAdd, Width: 8, Args: [3]NodeID{1, 1}, NArgs: 2},
			{Op: OpConst, Width: 8, Const: 1},
		},
		Done: 1,
	}
	if err := m.Validate(); err == nil {
		t.Error("forward reference not caught")
	}
	// Register without table entry.
	m2 := &Module{
		Name:  "bad2",
		Nodes: []Node{{Op: OpReg, Width: 8}, {Op: OpConst, Width: 1, Const: 1}},
		Done:  1,
	}
	if err := m2.Validate(); err == nil {
		t.Error("orphan reg not caught")
	}
	// Done out of range.
	m3 := &Module{Name: "bad3", Nodes: []Node{{Op: OpConst, Width: 1}}, Done: 5}
	if err := m3.Validate(); err == nil {
		t.Error("bad done not caught")
	}
	// Init exceeding width.
	b := NewBuilder("w")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized init not caught by builder")
			}
		}()
		b.Reg("r", 4, 300)
	}()
}

func TestEvalConst(t *testing.T) {
	b := NewBuilder("k")
	x := b.Const(20, 8)
	y := b.Const(3, 8)
	e := x.Mul(y, 8).Add(b.Const(1, 8))
	inp := b.Input("i", 8)
	dyn := e.Add(inp)
	r := b.Reg("r", 8, 0)
	b.SetNext(r, dyn)
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	if v, ok := m.EvalConst(e.ID()); !ok || v != 61 {
		t.Errorf("EvalConst = %d,%v want 61,true", v, ok)
	}
	if _, ok := m.EvalConst(dyn.ID()); ok {
		t.Error("EvalConst folded through an input")
	}
}

func TestConstDeduplication(t *testing.T) {
	b := NewBuilder("dedup")
	a := b.Const(5, 8)
	c := b.Const(5, 8)
	if a.ID() != c.ID() {
		t.Error("identical constants not shared")
	}
	d := b.Const(5, 16)
	if d.ID() == a.ID() {
		t.Error("constants of different widths shared")
	}
}

func TestBitsAndTrunc(t *testing.T) {
	b := NewBuilder("bits")
	x := b.Input("x", 32)
	lo := x.Bits(0, 8)
	mid := x.Bits(8, 4)
	r1 := b.Reg("r1", 8, 0)
	b.SetNext(r1, lo)
	r2 := b.Reg("r2", 4, 0)
	b.SetNext(r2, mid)
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	s := NewSim(m)
	s.SetInput(x.ID(), 0xABCD12)
	s.Step()
	if got := s.RegValue(0); got != 0x12 {
		t.Errorf("bits(0,8) = %#x, want 0x12", got)
	}
	if got := s.RegValue(1); got != 0xD {
		t.Errorf("bits(8,4) = %#x, want 0xd", got)
	}
}

func TestActivityCounting(t *testing.T) {
	b := NewBuilder("act")
	cnt := b.Reg("cnt", 8, 0)
	b.SetNext(cnt, cnt.Inc())
	b.SetDone(cnt.EqK(7))
	m := b.MustBuild()
	s := NewSim(m)
	s.EnableActivity()
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	tg := s.Toggles()
	// The counter register toggles every cycle.
	idx := m.Regs[0].Node
	if tg[idx] == 0 {
		t.Error("counter register shows no activity")
	}
}

func TestFSMBuilderLowering(t *testing.T) {
	// 3-state machine: 0 -> 1 on go, 1 -> 2 always, 2 -> 0 always.
	b := NewBuilder("fsm")
	gosig := b.Input("go", 1)
	f := b.FSM("ctrl", 3)
	f.When(0, gosig, 1)
	f.Always(1, 2)
	f.Always(2, 0)
	st := f.Build()
	b.SetDone(b.Const(0, 1))
	done := b.Const(1, 1)
	_ = done
	b.SetDone(b.Const(0, 1))
	m := b.MustBuild()
	s := NewSim(m)
	// Without go, stay at 0.
	s.Step()
	if got := s.Value(st.ID()); got != 0 {
		t.Fatalf("state after idle = %d, want 0", got)
	}
	s.SetInput(gosig.ID(), 1)
	s.Step()
	if got := s.Value(st.ID()); got != 1 {
		t.Fatalf("state = %d, want 1", got)
	}
	s.SetInput(gosig.ID(), 0)
	s.Step()
	if got := s.Value(st.ID()); got != 2 {
		t.Fatalf("state = %d, want 2", got)
	}
	s.Step()
	if got := s.Value(st.ID()); got != 0 {
		t.Fatalf("state = %d, want 0", got)
	}
}

func TestFSMFirstMatchingTransitionWins(t *testing.T) {
	b := NewBuilder("fsmprio")
	a := b.Input("a", 1)
	c := b.Input("c", 1)
	f := b.FSM("ctrl", 4)
	f.When(0, a, 1)
	f.When(0, c, 2)
	f.Always(0, 3)
	st := f.Build()
	b.SetDone(b.Const(0, 1))
	m := b.MustBuild()
	s := NewSim(m)
	s.SetInput(a.ID(), 1)
	s.SetInput(c.ID(), 1)
	s.Step()
	if got := s.Value(st.ID()); got != 1 {
		t.Fatalf("priority broken: state = %d, want 1", got)
	}
	s.Reset()
	s.SetInput(a.ID(), 0)
	s.SetInput(c.ID(), 1)
	s.Step()
	if got := s.Value(st.ID()); got != 2 {
		t.Fatalf("state = %d, want 2", got)
	}
	s.Reset()
	s.Step()
	if got := s.Value(st.ID()); got != 3 {
		t.Fatalf("default transition: state = %d, want 3", got)
	}
}

func TestFSMBuilderRejectsBadTables(t *testing.T) {
	b := NewBuilder("badfsm")
	f := b.FSM("ctrl", 2)
	f.Always(0, 1)
	f.When(0, b.Const(1, 1), 0) // after unconditional: invalid
	f.Build()
	b.SetDone(b.Const(0, 1))
	if _, err := b.Build(); err == nil {
		t.Error("transition after unconditional not rejected")
	}
	b2 := NewBuilder("badfsm2")
	f2 := b2.FSM("ctrl", 2)
	f2.Always(0, 7) // out of range
	f2.Build()
	b2.SetDone(b2.Const(0, 1))
	if _, err := b2.Build(); err == nil {
		t.Error("out-of-range state not rejected")
	}
}

func TestDownCounter(t *testing.T) {
	b := NewBuilder("dc")
	load := b.Input("load", 1)
	val := b.Input("val", 8)
	c := b.DownCounter("c", 8, load, val)
	b.SetDone(b.Const(0, 1))
	m := b.MustBuild()
	s := NewSim(m)
	s.SetInput(load.ID(), 1)
	s.SetInput(val.ID(), 3)
	s.Step()
	s.SetInput(load.ID(), 0)
	want := []uint64{3, 2, 1, 0, 0}
	for i, w := range want {
		if got := s.Value(c.ID()); got != w {
			t.Fatalf("step %d: counter = %d, want %d", i, got, w)
		}
		s.Step()
	}
}

func TestUpCounter(t *testing.T) {
	b := NewBuilder("uc")
	clr := b.Input("clr", 1)
	en := b.Input("en", 1)
	c := b.UpCounter("c", 8, clr, en)
	b.SetDone(b.Const(0, 1))
	m := b.MustBuild()
	s := NewSim(m)
	s.SetInput(en.ID(), 1)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if got := s.Value(c.ID()); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	s.SetInput(clr.ID(), 1)
	s.Step()
	if got := s.Value(c.ID()); got != 0 {
		t.Fatalf("after clear = %d, want 0", got)
	}
}

func TestAreaStats(t *testing.T) {
	b := NewBuilder("area")
	x := b.Input("x", 16)
	y := b.Input("y", 16)
	p := x.Mul(y, 32)
	r := b.Reg("r", 32, 0)
	b.SetNext(r, p)
	b.Memory("buf", 64)
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	st := Stats(m)
	if st.LogicGates <= 0 || st.RegGates <= 0 || st.MemGates <= 0 {
		t.Errorf("stats not positive: %+v", st)
	}
	if st.Total() != st.LogicGates+st.RegGates+st.MemGates {
		t.Error("Total mismatch")
	}
	if st.LogicArea() != st.LogicGates+st.RegGates {
		t.Error("LogicArea mismatch")
	}
	// A multiplier should dominate this tiny design's logic.
	if st.LogicGates < 1.2*32*32*0.9 {
		t.Errorf("multiplier cost missing: %f", st.LogicGates)
	}
}

func TestUsesTable(t *testing.T) {
	b := NewBuilder("uses")
	x := b.Input("x", 8)
	yda := x.Add(x)
	r := b.Reg("r", 8, 0)
	b.SetNext(r, yda)
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	uses := m.Uses()
	if len(uses[x.ID()]) != 2 {
		t.Errorf("x used %d times, want 2 (both add args)", len(uses[x.ID()]))
	}
}

func TestRegIndex(t *testing.T) {
	b := NewBuilder("ri")
	r0 := b.Reg("a", 8, 0)
	r1 := b.Reg("b", 8, 0)
	b.SetDone(b.Const(1, 1))
	m := b.MustBuild()
	if m.RegIndex(r0.ID()) != 0 || m.RegIndex(r1.ID()) != 1 {
		t.Error("RegIndex wrong")
	}
	if m.RegIndex(m.Done) != -1 {
		t.Error("RegIndex of non-reg should be -1")
	}
}
