package rtl

import "fmt"

// Signal is a typed handle to a node during construction. It carries the
// builder so expression methods read naturally: a.Add(b), x.Eq(y), ...
type Signal struct {
	b  *Builder
	id NodeID
}

// ID returns the underlying node ID.
func (s Signal) ID() NodeID { return s.id }

// Width returns the signal's bit width.
func (s Signal) Width() uint8 { return s.b.m.Nodes[s.id].Width }

// Builder incrementally constructs a Module. Nodes are appended in
// dependency order, so the resulting netlist is SSA by construction.
//
// The builder performs global value numbering (hash-consing) on pure
// combinational nodes, exactly like the common-subexpression
// elimination a synthesis tool applies: two structurally identical
// expressions become one node. This matters beyond area — the slicer's
// guard substitution is keyed by node identity, so semantically equal
// guards must be the same node. Registers and inputs are never merged.
type Builder struct {
	m      *Module
	consts map[constKey]NodeID
	pure   map[pureKey]NodeID
	fsmErr error
	// curSrc is the provenance stamped on newly created nodes (1-based
	// index into m.Srcs; 0 = none). Set by SetSrc.
	curSrc int32
	srcIdx map[SrcLoc]int32
}

type constKey struct {
	v uint64
	w uint8
}

// pureKey identifies a deterministic combinational node for value
// numbering. Memory reads are included: two reads of the same memory at
// the same address see the same value within a cycle (shared read port).
type pureKey struct {
	op    Op
	width uint8
	args  [3]NodeID
	mem   int32
}

// NewBuilder starts a new module with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		m:      &Module{Name: name},
		consts: make(map[constKey]NodeID),
		pure:   make(map[pureKey]NodeID),
	}
}

// Extend wraps an existing module for in-place extension: new nodes and
// registers are appended, preserving SSA order (new logic may reference
// existing nodes but not vice versa). Used by the instrumentation pass
// to add feature witness hardware. Build re-validates the module.
func Extend(m *Module) *Builder {
	b := &Builder{m: m, consts: make(map[constKey]NodeID), pure: make(map[pureKey]NodeID)}
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.Op == OpConst {
			b.consts[constKey{n.Const & n.Mask(), n.Width}] = NodeID(i)
		} else if k, ok := pureKeyFor(n); ok {
			b.pure[k] = NodeID(i)
		}
	}
	m.invalidateCaches()
	return b
}

// pureKeyFor returns the value-numbering key for a node, or ok=false
// for nodes that must stay unique (state, ports, literals).
func pureKeyFor(n *Node) (pureKey, bool) {
	switch n.Op {
	case OpConst, OpInput, OpReg:
		return pureKey{}, false
	}
	return pureKey{op: n.Op, width: n.Width, args: n.Args, mem: n.Mem}, true
}

// Wrap returns a Signal handle for an existing node, so extension code
// can combine pre-existing logic with new nodes.
func (b *Builder) Wrap(id NodeID) Signal {
	if id < 0 || int(id) >= len(b.m.Nodes) {
		panic(fmt.Sprintf("rtl: Wrap(%d) out of range", id))
	}
	return Signal{b: b, id: id}
}

// SetSrc records the source location stamped on nodes created from now
// on (until the next SetSrc). A zero line clears the stamp. Frontends
// call this per lowered statement so lint diagnostics carry HDL spans;
// value-numbered nodes keep the provenance of their first creation.
func (b *Builder) SetSrc(file string, line int) {
	if line <= 0 {
		b.curSrc = 0
		return
	}
	loc := SrcLoc{File: file, Line: line}
	if b.srcIdx == nil {
		b.srcIdx = make(map[SrcLoc]int32)
	}
	if idx, ok := b.srcIdx[loc]; ok {
		b.curSrc = idx
		return
	}
	b.m.Srcs = append(b.m.Srcs, loc)
	b.curSrc = int32(len(b.m.Srcs))
	b.srcIdx[loc] = b.curSrc
}

// node appends a raw node (or returns the existing value-numbered
// equivalent) and returns its signal.
func (b *Builder) node(n Node) Signal {
	if n.Width == 0 || n.Width > 64 {
		panic(fmt.Sprintf("rtl: builder %s: bad width %d for %s", b.m.Name, n.Width, n.Op))
	}
	if n.Src == 0 {
		n.Src = b.curSrc
	}
	k, pure := pureKeyFor(&n)
	if pure {
		if id, ok := b.pure[k]; ok {
			return Signal{b: b, id: id}
		}
	}
	id := NodeID(len(b.m.Nodes))
	b.m.Nodes = append(b.m.Nodes, n)
	if pure {
		b.pure[k] = id
	}
	return Signal{b: b, id: id}
}

// Const creates (or reuses) a literal of the given width.
func (b *Builder) Const(v uint64, width uint8) Signal {
	v &= WidthMask(width)
	k := constKey{v, width}
	if id, ok := b.consts[k]; ok {
		return Signal{b: b, id: id}
	}
	s := b.node(Node{Op: OpConst, Width: width, Const: v})
	b.consts[k] = s.id
	return s
}

// Input declares a module input port.
func (b *Builder) Input(name string, width uint8) Signal {
	return b.node(Node{Op: OpInput, Width: width, Name: name})
}

// RegSignal is a register under construction: its current-value signal
// is usable immediately; the next-value expression is bound later with
// SetNext (or implicitly held if never bound).
type RegSignal struct {
	Signal
	regIndex int
}

// Reg declares a register with a reset value. Until SetNext is called
// the register holds its value (next == current).
func (b *Builder) Reg(name string, width uint8, init uint64) RegSignal {
	if init&^WidthMask(width) != 0 {
		panic(fmt.Sprintf("rtl: builder %s: reg %s init %d exceeds width %d", b.m.Name, name, init, width))
	}
	s := b.node(Node{Op: OpReg, Width: width, Name: name})
	b.m.Regs = append(b.m.Regs, Reg{Node: s.id, Next: s.id, Init: init, Name: name})
	return RegSignal{Signal: s, regIndex: len(b.m.Regs) - 1}
}

// SetNext binds the register's next-value expression.
func (b *Builder) SetNext(r RegSignal, next Signal) {
	if next.Width() != r.Width() {
		panic(fmt.Sprintf("rtl: builder %s: reg %s next width %d != reg width %d",
			b.m.Name, b.m.Regs[r.regIndex].Name, next.Width(), r.Width()))
	}
	b.m.Regs[r.regIndex].Next = next.id
}

// Memory declares a read/write scratchpad of the given word count.
func (b *Builder) Memory(name string, words int) *Mem {
	mem := &Mem{Name: name, Words: words}
	b.m.Mems = append(b.m.Mems, mem)
	return mem
}

// ROM declares a read-only memory initialized with the given contents.
func (b *Builder) ROM(name string, data []uint64) *Mem {
	cp := make([]uint64, len(data))
	copy(cp, data)
	mem := &Mem{Name: name, Words: len(data), Data: cp, ROM: true}
	b.m.Mems = append(b.m.Mems, mem)
	return mem
}

// Read creates a combinational read of mem at addr with the given data
// width.
func (b *Builder) Read(mem *Mem, addr Signal, width uint8) Signal {
	idx := int32(-1)
	for i, m := range b.m.Mems {
		if m == mem {
			idx = int32(i)
			break
		}
	}
	if idx < 0 {
		panic("rtl: builder: Read of foreign memory")
	}
	n := Node{Op: OpMemRead, Width: width, Mem: idx}
	n.Args[0] = addr.id
	n.NArgs = 1
	return b.node(n)
}

// Write adds a synchronous write port: when en is nonzero at cycle end,
// data is stored at addr.
func (b *Builder) Write(mem *Mem, addr, data, en Signal) {
	idx := int32(-1)
	for i, m := range b.m.Mems {
		if m == mem {
			idx = int32(i)
			break
		}
	}
	if idx < 0 {
		panic("rtl: builder: Write to foreign memory")
	}
	b.m.Writes = append(b.m.Writes, MemWrite{Mem: idx, Addr: addr.id, Data: data.id, En: en.id})
}

// SetDone designates the module's done signal.
func (b *Builder) SetDone(done Signal) { b.m.Done = done.id }

// Build validates and returns the finished module. The builder must not
// be used afterwards.
func (b *Builder) Build() (*Module, error) {
	if b.fsmErr != nil {
		return nil, b.fsmErr
	}
	m := b.m
	b.m = nil
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustBuild is Build that panics on error; for use in tests and in
// accelerator constructors whose inputs are static.
func (b *Builder) MustBuild() *Module {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// AddRaw appends a pre-formed node. It exists for lowering passes and
// tests that need ops outside the Signal method set; Build still
// validates the result.
func (b *Builder) AddRaw(n Node) Signal { return b.node(n) }

func (b *Builder) binary(op Op, width uint8, x, y Signal) Signal {
	n := Node{Op: op, Width: width}
	n.Args[0], n.Args[1] = x.id, y.id
	n.NArgs = 2
	return b.node(n)
}

func widest(x, y Signal) uint8 {
	w := x.Width()
	if yw := y.Width(); yw > w {
		return yw
	}
	return w
}

// Add returns s+y at the wider operand width.
func (s Signal) Add(y Signal) Signal { return s.b.binary(OpAdd, widest(s, y), s, y) }

// AddW returns s+y truncated/extended to the given width.
func (s Signal) AddW(y Signal, width uint8) Signal { return s.b.binary(OpAdd, width, s, y) }

// Sub returns s-y (modular) at the wider operand width.
func (s Signal) Sub(y Signal) Signal { return s.b.binary(OpSub, widest(s, y), s, y) }

// Mul returns s*y at the given result width.
func (s Signal) Mul(y Signal, width uint8) Signal { return s.b.binary(OpMul, width, s, y) }

// And returns the bitwise AND.
func (s Signal) And(y Signal) Signal { return s.b.binary(OpAnd, widest(s, y), s, y) }

// Or returns the bitwise OR.
func (s Signal) Or(y Signal) Signal { return s.b.binary(OpOr, widest(s, y), s, y) }

// Xor returns the bitwise XOR.
func (s Signal) Xor(y Signal) Signal { return s.b.binary(OpXor, widest(s, y), s, y) }

// Not returns the bitwise complement at s's width.
func (s Signal) Not() Signal {
	n := Node{Op: OpNot, Width: s.Width()}
	n.Args[0] = s.id
	n.NArgs = 1
	return s.b.node(n)
}

// Shl returns s << y at s's width.
func (s Signal) Shl(y Signal) Signal { return s.b.binary(OpShl, s.Width(), s, y) }

// Shr returns s >> y at s's width.
func (s Signal) Shr(y Signal) Signal { return s.b.binary(OpShr, s.Width(), s, y) }

// ShlK and ShrK shift by a constant amount.
func (s Signal) ShlK(k uint8) Signal { return s.Shl(s.b.Const(uint64(k), 7)) }

// ShrK shifts right by a constant amount.
func (s Signal) ShrK(k uint8) Signal { return s.Shr(s.b.Const(uint64(k), 7)) }

// Eq returns the 1-bit comparison s == y.
func (s Signal) Eq(y Signal) Signal { return s.b.binary(OpEq, 1, s, y) }

// EqK returns the 1-bit comparison s == k.
func (s Signal) EqK(k uint64) Signal { return s.Eq(s.b.Const(k, s.Width())) }

// Ne returns the 1-bit comparison s != y.
func (s Signal) Ne(y Signal) Signal { return s.b.binary(OpNe, 1, s, y) }

// NeK returns the 1-bit comparison s != k.
func (s Signal) NeK(k uint64) Signal { return s.Ne(s.b.Const(k, s.Width())) }

// Lt returns the 1-bit unsigned comparison s < y.
func (s Signal) Lt(y Signal) Signal { return s.b.binary(OpLt, 1, s, y) }

// Le returns the 1-bit unsigned comparison s <= y.
func (s Signal) Le(y Signal) Signal { return s.b.binary(OpLe, 1, s, y) }

// Gt returns the 1-bit unsigned comparison s > y.
func (s Signal) Gt(y Signal) Signal { return y.Lt(s) }

// Ge returns the 1-bit unsigned comparison s >= y.
func (s Signal) Ge(y Signal) Signal { return y.Le(s) }

// IsZero returns the 1-bit test s == 0.
func (s Signal) IsZero() Signal { return s.EqK(0) }

// NonZero returns the 1-bit test s != 0.
func (s Signal) NonZero() Signal { return s.NeK(0) }

// Mux returns a if s (a 1-bit condition) is nonzero, else c.
func (s Signal) Mux(a, c Signal) Signal {
	w := widest(a, c)
	n := Node{Op: OpMux, Width: w}
	n.Args[0], n.Args[1], n.Args[2] = s.id, a.id, c.id
	n.NArgs = 3
	return s.b.node(n)
}

// Inc returns s+1 at s's width.
func (s Signal) Inc() Signal { return s.AddW(s.b.Const(1, s.Width()), s.Width()) }

// Dec returns s-1 at s's width.
func (s Signal) Dec() Signal { return s.Sub(s.b.Const(1, s.Width())) }

// WidenTo zero-extends the signal to the given width (no-op if the
// signal is already at least that wide).
func (s Signal) WidenTo(width uint8) Signal {
	if s.Width() >= width {
		return s
	}
	return s.Or(s.b.Const(0, width))
}

// Trunc re-types the signal to a narrower width via AND with a mask.
func (s Signal) Trunc(width uint8) Signal {
	if width >= s.Width() {
		return s
	}
	return s.b.binary(OpAnd, width, s, s.b.Const(WidthMask(width), s.Width()))
}

// Bits extracts bits [lo, lo+n) as an n-bit value.
func (s Signal) Bits(lo, n uint8) Signal {
	sh := s
	if lo > 0 {
		sh = s.ShrK(lo)
	}
	return sh.Trunc(n)
}
