package rtl

import "math/bits"

// event.go adds the third execution engine: an activity-driven
// evaluator over the compiled instruction stream. The compiled engine
// (stepCompiled) executes every instruction every cycle; the paper's
// whole premise, though, is that accelerators spend long stretches in
// wait states where almost no control logic toggles (§3, wait-state
// elision). The event engine exploits exactly that: each cycle it
// re-evaluates only the cone of influence of the state that actually
// changed — registers that latched a new value, inputs the testbench
// rewrote, and memories a write port or LoadMem touched — so a
// wait-state cycle where the FSM self-loops costs a short counter
// update instead of a full netlist sweep.
//
// The engine is a schedule memoizer, not an instruction-level event
// queue. Three observations make that both correct and fast:
//
//  1. Combinational seeds only arise between cycles. During the
//     combinational phase nothing new enters the fabric — the
//     sequential phases (register latches, memory commits, SetInput,
//     LoadMem) plant their seeds for the NEXT cycle. So the set of
//     instructions a cycle must run is a pure function of the seed
//     set it starts with.
//  2. Overapproximation is free of harm. Re-evaluating an instruction
//     whose inputs did not change recomputes the same value (the
//     invariant below), so any superset of the true changed cone
//     yields bit-exact state. The engine therefore expands the seed
//     set to its static transitive closure over the fanout graph —
//     "assume every output changes" — instead of tracking changes
//     dynamically.
//  3. Seed sets repeat. An accelerator in a steady state (a wait
//     loop, a pipelined inner loop) latches the same registers cycle
//     after cycle, so the handful of distinct seed sets and their
//     closures can be cached and reused.
//
// Each cycle therefore reduces to: hash the seed bitset, look its
// closure up in a small direct-mapped cache, and execute the cached
// list of [start,end) instruction runs with the compiled engine's
// verbatim inner loop. The hot path carries ZERO per-instruction
// bookkeeping — no dirty bits, no change detection, no consumer
// seeding. Every dynamic variant of this engine measured worse
// end-to-end: per-instruction dirty tracking cost ~4x the compiled
// walk per evaluation (bit-scan serial dependency chains), and even a
// streamlined change-detecting sweep (branch-free xor/fanout-OR per
// store, frontier waves) still ran ~2x per instruction, giving back
// everything its better precision won. Static schedules executed
// verbatim beat precise schedules executed with bookkeeping.
//
// Precision instead comes from the closure granularity: closure
// bitsets are PER-INSTRUCTION (multi-word masks, sized by the
// program), not per-block. An earlier single-uint64 variant grouped
// instructions into ≤64 blocks and the rounding compounded
// transitively through the closure — every seeded comparator dragged
// whole neighbouring blocks in, whose outputs dragged more blocks —
// measuring closure fractions of 0.56-0.91 of the netlist versus true
// activity of 0.19-0.66.
//
// Seeds, by contrast, are tracked at STATE-SOURCE granularity: a seed
// can only originate at a register latch, an input port, or a memory
// — and real designs have a few dozen of those (the whole suite fits
// in 39), so the seed set is a single uint64 with one bit per source.
// Seeding a latched register is one OR of a one-bit constant (the
// earlier per-slot multi-word rows spent ~19% of wait-heavy workloads
// in their OR loops), the schedule-cache key is one word, and the hit
// path is a single multiply-hash and compare. Only the memoized,
// off-hot-path closure walk expands source bits into instruction
// masks.
//
// Correctness invariant: between cycles, vals[v] for every slot v
// equals what a full evaluation would produce. The seeds are exactly
// the three ways state enters the combinational fabric — register
// latches, SetInput, and memory mutation — and the closure is closed
// under the consumer relation, so every instruction whose transitive
// inputs changed is scheduled. SSA emission order places consumers at
// higher instruction indices than their producers, so the closure
// walk is a single ascending pass and the runs execute in dependency
// order. Bit-exactness against the interpreter and the compiled
// engine — values, cycle counts, toggle counters, memory contents —
// is enforced by the differential tests in compile_test.go,
// event_test.go, and internal/suite.

// evMaxUnits caps the seed-bitset width at 8 words. Programs beyond
// 512 instructions group adjacent instructions into units of 2^shift;
// every design in the suite (≤406 instructions) stays at exact
// per-instruction units.
const evMaxUnits = 512

// evMask is one seed/closure bitset: bit u covers instruction unit u.
// Fixed width — a single cache line — so the hot seeding loops are
// constant-bound (the compiler unrolls them and drops every bounds
// check), unlike the earlier []uint64 rows whose variable-length OR
// loops alone cost ~19% of wait-heavy workloads.
type evMask [8]uint64

// evShiftFor picks the smallest unit shift that fits the program in
// evMaxUnits units.
func evShiftFor(n int) uint {
	s := uint(0)
	for (n+(1<<s)-1)>>s > evMaxUnits {
		s++
	}
	return s
}

// eventTables is the static fanout graph shared by every event-driven
// Sim of one Program. It is built once, lazily, under Program.evOnce.
type eventTables struct {
	// shift is the instruction-to-unit grouping (0 unless the program
	// exceeds evMaxUnits instructions); units is the bitset width in
	// units.
	shift uint
	units int
	// Seed sources are numbered registers first, then memories, then
	// input ports. Source s owns bit min(s, 63) of the seed word —
	// designs with more than 64 sources share bit 63 among the excess,
	// a sound overapproximation (their fan masks are unioned).
	// srcFan[b] is the instruction units consuming source bit b.
	srcFan []evMask
	// regBit, memBit and nodeBit map a register index, memory index,
	// or node id (inputs and register nodes; 0 for non-sources) to its
	// seed bit.
	regBit  []uint64
	memBit  []uint64
	nodeBit []uint64
	// fullRuns/fullRegs is the every-instruction, every-register
	// schedule the first cycle after Reset executes: reset state is
	// not describable as a seed set (even const-only expressions need
	// one evaluation).
	fullRuns []int32
	fullRegs []int32
	// dstFan (and dst2Fan for fused super-ops) pre-resolve each
	// instruction's output mask(s) — the units holding the consumers
	// of code[i].dst: the closure walk reads them sequentially.
	dstFan  []evMask
	dst2Fan []evMask
	// regWriter holds, per register, the instruction index computing
	// the register's next-value slot, or -1 when that slot is not
	// instruction-written (an input, another register, a constant).
	// A register whose writer is outside a cycle's schedule cannot have
	// latched a new value, so phase 3 may skip it.
	regWriter []int32
	// regAlways lists the registers with regWriter -1: their next-value
	// slots can change between cycles without any instruction running
	// (SetInput, another latch), so they are latched every cycle.
	regAlways []int32
	// evRegs packs the per-register latch tables (next slot, node,
	// mask, seed bit) into one stream for phase 3. regChain reports
	// whether any register's next-value slot is itself a register
	// node; when false, no latch write can feed another latch's read
	// in the same cycle, so phase 3 fuses its read and write loops.
	evRegs   []evReg
	regChain bool
}

// evReg is one register's phase-3 latch entry.
type evReg struct {
	nx, nd    int32
	mask, bit uint64
}

// argSlots returns the value slots an instruction actually reads.
// Immediate forms carry their constant inline and read only a; fused
// super-ops read the head's operand plus the tail's. The returned set
// must never under-approximate: the fanout graph built from it is what
// guarantees a changed input re-evaluates its consumers.
func (in *instr) argSlots() (slots [3]int32, n int) {
	switch in.op {
	case iZero:
		return slots, 0
	case iNot, iAddImm, iSubImmR, iSubImmL, iMulImm, iAndImm, iOrImm,
		iXorImm, iShlImm, iShrImm, iEqImm, iNeImm, iLtImmR, iLtImmL,
		iLeImmR, iLeImmL, iMemRead:
		slots[0] = in.a
		return slots, 1
	case iMux, iEqImmMux, iNeImmMux:
		slots[0], slots[1], slots[2] = in.a, in.b, in.c
		return slots, 3
	default: // two-operand ops, iAddAndImm, iSubAndImm
		slots[0], slots[1] = in.a, in.b
		return slots, 2
	}
}

// hasDst2 reports whether the fused super-op writes a second slot.
func (in *instr) hasDst2() bool {
	switch in.op {
	case iEqImmMux, iNeImmMux, iAddAndImm, iSubAndImm:
		return true
	}
	return false
}

// eventTables builds (once) and returns the program's fanout graph.
// Safe for concurrent use; every event Sim of this program shares it.
func (p *Program) eventTables() *eventTables {
	p.evOnce.Do(func() {
		m := p.m
		shift := evShiftFor(len(p.code))
		units := (len(p.code) + (1 << shift) - 1) >> shift
		t := &eventTables{shift: shift, units: units}
		// fanM/memM are builder scratch: the consumer units of every
		// value slot / memory, condensed below into per-source and
		// per-instruction masks.
		fanM := make([]evMask, len(m.Nodes))
		memM := make([]evMask, len(m.Mems))
		// slotWriter maps each value slot to the instruction computing
		// it (-1 for slots written outside phase 1: inputs, registers,
		// constants).
		slotWriter := make([]int32, len(m.Nodes))
		for v := range slotWriter {
			slotWriter[v] = -1
		}
		for i := range p.code {
			in := &p.code[i]
			u := uint(i) >> shift
			w, bit := u>>6, uint64(1)<<(u&63)
			slots, n := in.argSlots()
			for a := 0; a < n; a++ {
				fanM[slots[a]][w] |= bit
			}
			if in.op == iMemRead {
				memM[in.mem][w] |= bit
			}
			slotWriter[in.dst] = int32(i)
			if in.hasDst2() {
				slotWriter[in.dst2] = int32(i)
			}
		}
		// Per-instruction output masks (fanM complete).
		t.dstFan = make([]evMask, len(p.code))
		t.dst2Fan = make([]evMask, len(p.code))
		for i := range p.code {
			in := &p.code[i]
			t.dstFan[i] = fanM[in.dst]
			if in.hasDst2() {
				t.dst2Fan[i] = fanM[in.dst2]
			}
		}
		// Seed sources: registers, then memories, then inputs. Each
		// claims one bit of the seed word (sharing bit 63 past 64
		// sources); srcFan accumulates — shared bits union their rows.
		t.srcFan = make([]evMask, 64)
		t.regBit = make([]uint64, len(m.Regs))
		t.memBit = make([]uint64, len(m.Mems))
		t.nodeBit = make([]uint64, len(m.Nodes))
		src := 0
		bitOf := func() (int, uint64) {
			b := src
			if b > 63 {
				b = 63
			}
			src++
			return b, uint64(1) << b
		}
		for i := range m.Regs {
			b, bit := bitOf()
			t.regBit[i] = bit
			t.nodeBit[p.regNode[i]] = bit
			row := &t.srcFan[b]
			fan := &fanM[p.regNode[i]]
			for w := 0; w < 8; w++ {
				row[w] |= fan[w]
			}
		}
		for mi := range m.Mems {
			b, bit := bitOf()
			t.memBit[mi] = bit
			row := &t.srcFan[b]
			fan := &memM[mi]
			for w := 0; w < 8; w++ {
				row[w] |= fan[w]
			}
		}
		for v := range m.Nodes {
			if m.Nodes[v].Op != OpInput {
				continue
			}
			b, bit := bitOf()
			t.nodeBit[v] = bit
			row := &t.srcFan[b]
			fan := &fanM[v]
			for w := 0; w < 8; w++ {
				row[w] |= fan[w]
			}
		}
		t.regWriter = make([]int32, len(p.regNext))
		t.evRegs = make([]evReg, len(p.regNext))
		isRegNode := make([]bool, len(m.Nodes))
		for i := range m.Regs {
			isRegNode[p.regNode[i]] = true
		}
		for i, nx := range p.regNext {
			t.regWriter[i] = slotWriter[nx]
			if t.regWriter[i] < 0 {
				t.regAlways = append(t.regAlways, int32(i))
			}
			t.evRegs[i] = evReg{nx: nx, nd: p.regNode[i], mask: p.regMask[i], bit: t.regBit[i]}
			if isRegNode[nx] {
				t.regChain = true
			}
		}
		t.fullRuns = []int32{0, int32(len(p.code))}
		t.fullRegs = make([]int32, len(m.Regs))
		for i := range t.fullRegs {
			t.fullRegs[i] = int32(i)
		}
		p.ev = t
	})
	return p.ev
}

// evSchedSize is the closure cache size (direct-mapped, power of 2).
// Steady-state workloads cycle through a handful of distinct seed
// sets; 256 entries make collisions rare without locking or eviction
// bookkeeping.
const evSchedSize = 1024

// evSched is one memoized schedule: the source seed word it answers
// for (zero while the entry is empty — a live seed set is never
// empty, runsFor is only reached when srcDirty != 0), the closure's
// instruction runs as flat [start,end) pairs, and the registers whose
// next-value slots the closure recomputes — the only ones phase 3
// must examine.
type evSched struct {
	key  uint64
	runs []int32
	regs []int32
}

// evState is the per-Sim dynamic state of the event engine.
type evState struct {
	tab *eventTables
	// srcDirty is the seed set for the next cycle, one bit per state
	// source (register/memory/input). Filled by the sequential phases
	// and the testbench between sweeps; consumed (and cleared) at the
	// top of each cycle.
	srcDirty uint64
	// forceFull schedules one full evaluation (every instruction,
	// every register) for the next cycle — set by Reset, whose state
	// is not expressible as a seed set.
	forceFull bool
	// sched memoizes seed word → closure instruction runs.
	sched [evSchedSize]evSched
	// curRuns is the schedule the current cycle executed — the slots
	// activity accounting must examine. Points into the cache.
	curRuns []int32
	// changed lists state slots mutated outside the combinational
	// phase (register latches, SetInput) since the last activity
	// accounting; maintained only while toggle counting is enabled.
	changed []int32
	// fullScan forces the next activity accounting to sweep every node
	// (set when EnableActivity is called mid-run, so toggles accrued
	// against a stale baseline match the interpreter's semantics).
	fullScan bool
	// evals counts instructions executed since Reset (whole scheduled
	// runs, including closure overapproximation) — the measure of
	// combinational work actually performed. cycles × len(code) minus
	// this is the work wait-state elision saved.
	evals uint64
}

// initEvent attaches event-engine state to a compiled Sim.
func (s *Sim) initEvent() {
	s.ev = &evState{tab: s.prog.eventTables()}
}

// NewEventSim prepares an event-driven simulator for the module,
// compiling it first. See NewSim for the module contract.
func NewEventSim(m *Module) *Sim {
	return Compile(m).NewEventSim()
}

// NewEventSim instantiates an event-driven simulator executing this
// compiled program. Many Sims (of any engine) may share one Program.
func (p *Program) NewEventSim() *Sim {
	s := newSimState(p.m)
	s.prog = p
	s.initEvent()
	s.Reset()
	return s
}

// evSeedSlot schedules the consumers of a changed source node
// (register node or input port): one OR of the node's seed bit.
func (s *Sim) evSeedSlot(v int32) {
	s.ev.srcDirty |= s.ev.tab.nodeBit[v]
}

// evSeedMem schedules every read port of a mutated memory.
func (s *Sim) evSeedMem(mi int32) {
	s.ev.srcDirty |= s.ev.tab.memBit[mi]
}

// evMark records a changed state slot for incremental toggle
// accounting.
func (s *Sim) evMark(v int32) {
	if s.countToggles {
		s.ev.changed = append(s.ev.changed, v)
	}
}

// evReset schedules one full evaluation, so the first cycle after
// Reset recomputes every instruction from the reset state
// (bit-identical to the other engines' first cycle — including
// expressions over constants only, which no seed set can describe).
func (s *Sim) evReset() {
	ev := s.ev
	ev.srcDirty = 0
	ev.forceFull = true
	ev.curRuns = nil
	ev.changed = ev.changed[:0]
	ev.evals = 0
}

// runsFor returns the memoized schedule for the source seed word dm:
// the transitive closure over the fanout graph folded into
// [start,end) instruction runs, plus the registers whose next-value
// slots the closure recomputes. The closure walk is a single
// ascending pass — consumers sit at higher instruction indices than
// producers (SSA emission order), so fan masks only point forward.
// The hit path is one multiply-hash and one word compare; an empty
// entry's zero key can never match (a live seed set is never empty).
func (ev *evState) runsFor(dm uint64, nCode int32) (runs, regs []int32) {
	h := dm * 0x9e3779b97f4a7c15
	e := &ev.sched[(h>>48)&(evSchedSize-1)]
	if e.key == dm {
		return e.runs, e.regs
	}
	t := ev.tab
	// Expand the source bits into the seed instruction mask, then walk.
	var cl evMask
	for d := dm; d != 0; d &= d - 1 {
		row := &t.srcFan[bits.TrailingZeros64(d)]
		for w := 0; w < 8; w++ {
			cl[w] |= row[w]
		}
	}
	shift := t.shift
	for i := 0; i < int(nCode); i++ {
		u := uint(i) >> shift
		if cl[u>>6]&(uint64(1)<<(u&63)) != 0 {
			row := &t.dstFan[i]
			row2 := &t.dst2Fan[i]
			for w := 0; w < 8; w++ {
				cl[w] |= row[w] | row2[w]
			}
		}
	}
	// Fold the closure's set bits into [start,end) instruction runs,
	// merging adjacent units across word boundaries.
	runs = make([]int32, 0, 16)
	open := false
	var start int32
	for u := 0; u < t.units; u++ {
		if cl[u>>6]&(uint64(1)<<(uint(u)&63)) != 0 {
			if !open {
				start = int32(u) << shift
				open = true
			}
		} else if open {
			runs = append(runs, start, int32(u)<<shift)
			open = false
		}
	}
	if open {
		end := int32(t.units) << shift
		if end > nCode {
			end = nCode
		}
		runs = append(runs, start, end)
	}
	if n := len(runs); n > 0 && runs[n-1] > nCode {
		runs[n-1] = nCode
	}
	// Registers this schedule can latch: those whose next-value slot
	// is written by a scheduled instruction, plus the always set
	// (slots mutable between cycles without any instruction running).
	regs = make([]int32, 0, len(t.regWriter))
	for ri, wi := range t.regWriter {
		if wi < 0 {
			regs = append(regs, int32(ri))
			continue
		}
		u := uint(wi) >> shift
		if cl[u>>6]&(uint64(1)<<(u&63)) != 0 {
			regs = append(regs, int32(ri))
		}
	}
	e.key = dm
	e.runs = runs
	e.regs = regs
	return runs, regs
}

// stepEvent executes one cycle event-driven. It mirrors the compiled
// engine's four phases; the only difference is *which* instructions
// run — phase 1 executes the memoized closure of the cycle's seed
// set, and phases 2–4 plant the next cycle's seeds from committed
// writes and latched registers. The run loop's per-op semantics are
// copied verbatim from stepCompiled; the differential tests hold the
// copies identical.
func (s *Sim) stepEvent() bool {
	p := s.prog
	ev := s.ev
	vals := s.vals
	mems := s.mems
	code := p.code
	// Phase 1: execute this cycle's schedule. No bookkeeping inside
	// the loop — the schedule already overapproximates the changed
	// cone, and the stores are unconditional exactly like
	// stepCompiled's.
	var runs []int32
	regs := ev.tab.regAlways
	if ev.forceFull {
		// First cycle after Reset: the full schedule subsumes any
		// seeds planted since (LoadMem, SetInput).
		ev.forceFull = false
		ev.srcDirty = 0
		runs, regs = ev.tab.fullRuns, ev.tab.fullRegs
	} else if ev.srcDirty != 0 {
		runs, regs = ev.runsFor(ev.srcDirty, int32(len(code)))
		ev.srcDirty = 0
	}
	ev.curRuns = runs
	evals := ev.evals
	for r := 0; r < len(runs); r += 2 {
		v, end := runs[r], runs[r+1]
		evals += uint64(end - v)
		for ; v < end; v++ {
			in := &code[v]
			switch in.op {
			case iAdd:
				vals[in.dst] = (vals[in.a] + vals[in.b]) & in.mask
			case iAddImm:
				vals[in.dst] = (vals[in.a] + in.imm) & in.mask
			case iSub:
				vals[in.dst] = (vals[in.a] - vals[in.b]) & in.mask
			case iSubImmR:
				vals[in.dst] = (vals[in.a] - in.imm) & in.mask
			case iSubImmL:
				vals[in.dst] = (in.imm - vals[in.a]) & in.mask
			case iMul:
				vals[in.dst] = (vals[in.a] * vals[in.b]) & in.mask
			case iMulImm:
				vals[in.dst] = (vals[in.a] * in.imm) & in.mask
			case iAnd:
				vals[in.dst] = vals[in.a] & vals[in.b] & in.mask
			case iAndImm:
				vals[in.dst] = vals[in.a] & in.imm
			case iOr:
				vals[in.dst] = (vals[in.a] | vals[in.b]) & in.mask
			case iOrImm:
				vals[in.dst] = (vals[in.a] | in.imm) & in.mask
			case iXor:
				vals[in.dst] = (vals[in.a] ^ vals[in.b]) & in.mask
			case iXorImm:
				vals[in.dst] = (vals[in.a] ^ in.imm) & in.mask
			case iNot:
				vals[in.dst] = ^vals[in.a] & in.mask
			case iShl:
				if sh := vals[in.b]; sh < 64 {
					vals[in.dst] = (vals[in.a] << sh) & in.mask
				} else {
					vals[in.dst] = 0
				}
			case iShlImm:
				vals[in.dst] = (vals[in.a] << in.imm) & in.mask
			case iShr:
				if sh := vals[in.b]; sh < 64 {
					vals[in.dst] = (vals[in.a] >> sh) & in.mask
				} else {
					vals[in.dst] = 0
				}
			case iShrImm:
				vals[in.dst] = (vals[in.a] >> in.imm) & in.mask
			case iZero:
				vals[in.dst] = 0
			case iEq:
				if vals[in.a] == vals[in.b] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iEqImm:
				if vals[in.a] == in.imm {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iNe:
				if vals[in.a] != vals[in.b] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iNeImm:
				if vals[in.a] != in.imm {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iLt:
				if vals[in.a] < vals[in.b] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iLtImmR:
				if vals[in.a] < in.imm {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iLtImmL:
				if in.imm < vals[in.a] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iLe:
				if vals[in.a] <= vals[in.b] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iLeImmR:
				if vals[in.a] <= in.imm {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iLeImmL:
				if in.imm <= vals[in.a] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case iMux:
				if vals[in.a] != 0 {
					vals[in.dst] = vals[in.b] & in.mask
				} else {
					vals[in.dst] = vals[in.c] & in.mask
				}
			case iMemRead:
				data := mems[in.mem]
				if addr := vals[in.a]; addr < uint64(len(data)) {
					vals[in.dst] = data[addr] & in.mask
				} else {
					vals[in.dst] = 0
				}
			case iEqImmMux:
				var t uint64
				if vals[in.a] == in.imm {
					t = 1
				}
				vals[in.dst2] = t
				if t != 0 {
					vals[in.dst] = vals[in.b] & in.mask
				} else {
					vals[in.dst] = vals[in.c] & in.mask
				}
			case iNeImmMux:
				var t uint64
				if vals[in.a] != in.imm {
					t = 1
				}
				vals[in.dst2] = t
				if t != 0 {
					vals[in.dst] = vals[in.b] & in.mask
				} else {
					vals[in.dst] = vals[in.c] & in.mask
				}
			case iAddAndImm:
				t := (vals[in.a] + vals[in.b]) & in.mask
				vals[in.dst2] = t
				vals[in.dst] = t & in.imm
			case iSubAndImm:
				t := (vals[in.a] - vals[in.b]) & in.mask
				vals[in.dst2] = t
				vals[in.dst] = t & in.imm
			}
		}
	}
	ev.evals = evals
	done := vals[p.done] != 0
	// Phase 2: memory writes commit; a write that actually changes a
	// word wakes the memory's read ports for the next cycle. (The
	// compiled engine stores unconditionally; storing an identical
	// value leaves contents — and hence reads — unchanged.)
	for i, en := range p.wEn {
		if vals[en] != 0 {
			data := mems[p.wMem[i]]
			if addr := vals[p.wAddr[i]]; addr < uint64(len(data)) {
				if nv := vals[p.wData[i]]; data[addr] != nv {
					data[addr] = nv
					s.evSeedMem(p.wMem[i])
				}
			}
		}
	}
	// Phase 3: registers latch simultaneously; a register that latched
	// a new value seeds its combinational cone for the next cycle.
	// Only the schedule's register list is examined: a register whose
	// next-value slot no scheduled instruction recomputed still holds
	// its latched value (the invariant vals[regNode] == vals[regNext]
	// & mask from the cycle that last scheduled it), so skipping it
	// changes nothing. When no register chains into another (the
	// common case), the read and write loops fuse; otherwise the
	// two-loop structure (read all, then write) preserves
	// simultaneous-latch semantics within the subset.
	evRegs := ev.tab.evRegs
	if !ev.tab.regChain {
		for _, i := range regs {
			r := &evRegs[i]
			nv := vals[r.nx] & r.mask
			if vals[r.nd] != nv {
				vals[r.nd] = nv
				s.evMark(r.nd)
				ev.srcDirty |= r.bit
			}
		}
	} else {
		latch := s.latch
		for _, i := range regs {
			r := &evRegs[i]
			latch[i] = vals[r.nx] & r.mask
		}
		for _, i := range regs {
			r := &evRegs[i]
			if vals[r.nd] != latch[i] {
				vals[r.nd] = latch[i]
				s.evMark(r.nd)
				ev.srcDirty |= r.bit
			}
		}
	}
	// Phase 4: activity accounting over this cycle's schedule only.
	if s.countToggles {
		s.evCountActivity()
	}
	s.cycles++
	return done
}

// evCountActivity is the event engine's toggle accounting: instead of
// sweeping every node it visits only the slots the cycle's schedule
// could have written (plus registers and inputs marked by the
// sequential phases). A slot outside the schedule cannot have changed.
// Duplicate visits are harmless — the first syncs prev, the second
// sees no difference.
func (s *Sim) evCountActivity() {
	ev := s.ev
	if ev.fullScan {
		// One interpreter-style full sweep to absorb changes that
		// predate EnableActivity, then switch to incremental.
		ev.fullScan = false
		ev.changed = ev.changed[:0]
		s.countActivity()
		return
	}
	vals, prev, tg := s.vals, s.prev, s.toggles
	code := s.prog.code
	runs := ev.curRuns
	for r := 0; r < len(runs); r += 2 {
		for v := runs[r]; v < runs[r+1]; v++ {
			in := &code[v]
			if uv := vals[in.dst]; uv != prev[in.dst] {
				tg[in.dst]++
				prev[in.dst] = uv
			}
			if in.hasDst2() {
				if uv := vals[in.dst2]; uv != prev[in.dst2] {
					tg[in.dst2]++
					prev[in.dst2] = uv
				}
			}
		}
	}
	for _, v := range ev.changed {
		if uv := vals[v]; uv != prev[v] {
			tg[v]++
			prev[v] = uv
		}
	}
	ev.changed = ev.changed[:0]
}
