package codegen

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// EmitFunc renders the plan as the source of one Go function with the
// rtl.NativeStep signature:
//
//	func <name>(vals []uint64, mems [][]uint64) bool
//
// The body is the cycle unrolled into straight-line statements:
// register and input values are loaded into locals once, each residual
// node becomes an SSA local (so consumers read machine registers, not
// memory), folded constants print as literals at their use sites, and
// the state-dependent suffix becomes a switch over the latched FSM
// register with one case per reachable state. Every node's value is
// still stored into vals so observation (Value, toggles, VCD) stays
// bit-exact with the interpreter.
//
// The output is plain unformatted Go; cmd/rtlgen runs the assembled
// file through go/format before writing it.
func EmitFunc(p *Plan, name string) string {
	e := &emitter{p: p, m: p.m, defined: map[int32]bool{}}
	return e.run(name)
}

type emitter struct {
	p *Plan
	m *rtl.Module
	b strings.Builder
	// defined marks nodes with a function-scope local v<N> (loads and
	// prefix results). Arm-scope locals are tracked per arm.
	defined map[int32]bool
}

func (e *emitter) pf(format string, args ...any) {
	fmt.Fprintf(&e.b, format, args...)
}

func (e *emitter) run(name string) string {
	p, m := e.p, e.m
	e.pf("func %s(vals []uint64, mems [][]uint64) bool {\n", name)
	if n := len(m.Nodes); n > 0 {
		e.pf("_ = vals[%d]\n", n-1)
	}
	for _, mi := range e.usedMems() {
		e.pf("m%d := mems[%d]\n", mi, mi)
	}

	// Function-scope loads: register/input values referenced by residual
	// instructions (in any scope where they are not a known literal).
	for _, id := range e.loadNodes() {
		e.pf("v%d := vals[%d]\n", id, id)
		e.defined[id] = true
	}

	// Scope knowledge: OpConst node values hold everywhere (preloaded at
	// Reset, and printed as literals at use sites), extended by each
	// instruction list's own folded constants.
	prefixKnown := map[int32]uint64{}
	for i := range m.Nodes {
		if n := &m.Nodes[i]; n.Op == rtl.OpConst {
			prefixKnown[int32(i)] = n.Const & n.Mask()
		}
	}
	for k, v := range knownIn(p.prefix) { //detlint:allow scratch map, never ranged for output
		prefixKnown[k] = v
	}
	for _, in := range p.prefix {
		if in.kind != pConst {
			e.defined[in.dst] = true
		}
	}
	e.emitInsts(p.prefix, prefixKnown, e.defined)

	if p.stateNode >= 0 {
		e.pf("switch vals[%d] {\n", p.stateNode)
		for ai, sv := range p.stateVals {
			e.pf("case %#x:\n", sv)
			armKnown := knownIn(p.arms[ai])
			for k, v := range prefixKnown { //detlint:allow scratch map, never ranged for output
				armKnown[k] = v
			}
			armKnown[p.stateNode] = sv
			e.emitInsts(p.arms[ai], armKnown, armDefined(e.defined, p.arms[ai]))
		}
		e.pf("default:\n")
		genKnown := knownIn(p.generic)
		for k, v := range prefixKnown { //detlint:allow scratch map, never ranged for output
			genKnown[k] = v
		}
		e.emitInsts(p.generic, genKnown, armDefined(e.defined, p.generic))
		e.pf("}\n")
	}

	e.pf("done := vals[%d] != 0\n", m.Done)
	for i := range m.Writes {
		w := &m.Writes[i]
		e.pf("if vals[%d] != 0 {\n", w.En)
		e.pf("if addr := vals[%d]; addr < uint64(len(m%d)) {\n", w.Addr, w.Mem)
		e.pf("m%d[addr] = vals[%d]\n", w.Mem, w.Data)
		e.pf("}\n}\n")
	}
	// Registers latch simultaneously: all next values are read into
	// locals before any register's vals entry is overwritten.
	for i := range m.Regs {
		r := &m.Regs[i]
		e.pf("l%d := vals[%d]%s\n", i, r.Next, maskSuffix(m.Nodes[r.Node].Mask()))
	}
	for i := range m.Regs {
		e.pf("vals[%d] = l%d\n", m.Regs[i].Node, i)
	}
	e.pf("return done\n}\n")
	return e.b.String()
}

// usedMems lists memory indices touched by read or write ports, in
// index order.
func (e *emitter) usedMems() []int32 {
	used := make([]bool, len(e.m.Mems))
	mark := func(insts []inst) {
		for i := range insts {
			if insts[i].kind == pGeneric && insts[i].op == rtl.OpMemRead {
				used[insts[i].mem] = true
			}
		}
	}
	mark(e.p.prefix)
	for _, arm := range e.p.arms {
		mark(arm)
	}
	mark(e.p.generic)
	for i := range e.m.Writes {
		used[e.m.Writes[i].Mem] = true
	}
	var out []int32
	for i, u := range used {
		if u {
			out = append(out, int32(i))
		}
	}
	return out
}

// loadNodes lists register/input nodes that some residual instruction
// reads in a scope where the value is not a known literal, in ID order.
func (e *emitter) loadNodes() []int32 {
	m := e.m
	need := make([]bool, len(m.Nodes))
	scan := func(insts []inst, known map[int32]uint64) {
		for i := range insts {
			in := &insts[i]
			if in.kind == pConst {
				continue
			}
			nargs := 1
			if in.kind == pGeneric {
				nargs = int(m.Nodes[in.dst].NArgs)
			}
			args := [3]int32{in.a, in.b, in.c}
			for a := 0; a < nargs; a++ {
				id := args[a]
				if _, ok := known[id]; ok {
					continue
				}
				switch m.Nodes[id].Op {
				case rtl.OpReg, rtl.OpInput:
					need[id] = true
				}
			}
		}
	}
	prefixKnown := knownIn(e.p.prefix)
	scan(e.p.prefix, prefixKnown)
	for ai, arm := range e.p.arms {
		armKnown := knownIn(arm)
		armKnown[e.p.stateNode] = e.p.stateVals[ai]
		scan(arm, armKnown)
	}
	scan(e.p.generic, knownIn(e.p.generic))
	var out []int32
	for i, n := range need {
		if n {
			out = append(out, int32(i))
		}
	}
	return out
}

// knownIn collects the literal results proven within an instruction
// list (its pConst entries), used to print consumers as literals.
func knownIn(insts []inst) map[int32]uint64 {
	known := map[int32]uint64{}
	for i := range insts {
		if insts[i].kind == pConst {
			known[insts[i].dst] = insts[i].imm
		}
	}
	return known
}

// armDefined extends the function-scope defined set with the locals the
// arm itself will introduce (its residual instructions), so intra-arm
// consumers read those locals.
func armDefined(fn map[int32]bool, insts []inst) map[int32]bool {
	d := make(map[int32]bool, len(fn)+len(insts))
	for k, v := range fn { //detlint:allow scratch map, never ranged for output
		d[k] = v
	}
	for i := range insts {
		if insts[i].kind != pConst {
			d[insts[i].dst] = true
		}
	}
	return d
}

// ref renders a read of node id: a literal when known in scope, the SSA
// local when one exists, else the backing array.
func ref(id int32, known map[int32]uint64, defined map[int32]bool) string {
	if v, ok := known[id]; ok {
		return fmt.Sprintf("%#x", v)
	}
	if defined[id] {
		return fmt.Sprintf("v%d", id)
	}
	return fmt.Sprintf("vals[%d]", id)
}

// maskSuffix renders "& mask", or nothing for full-width values.
func maskSuffix(mask uint64) string {
	if mask == ^uint64(0) {
		return ""
	}
	return fmt.Sprintf(" & %#x", mask)
}

// bound returns a mask covering every value a node reference can hold:
// a literal's exact bits, otherwise the node's width mask (all engines
// store width-truncated values).
func bound(id int32, m *rtl.Module, known map[int32]uint64) uint64 {
	if v, ok := known[id]; ok {
		return v
	}
	return m.Nodes[id].Mask()
}

// emitInsts renders one instruction list. known maps nodes to literal
// values in this scope; defined holds every node with a visible local
// (including this list's own, precomputed by the caller).
func (e *emitter) emitInsts(insts []inst, known map[int32]uint64, defined map[int32]bool) {
	m := e.m
	r := func(id int32) string { return ref(id, known, defined) }
	for i := range insts {
		in := &insts[i]
		d := in.dst
		switch in.kind {
		case pConst:
			e.pf("vals[%d] = %#x\n", d, in.imm)
			continue
		case pCopy:
			msk := maskSuffix(in.mask)
			if bound(in.a, m, known)&^in.mask == 0 {
				msk = ""
			}
			e.pf("v%d := %s%s\n", d, r(in.a), msk)
		case pShlImm:
			e.pf("v%d := (%s << %d)%s\n", d, r(in.a), in.imm, maskSuffix(in.mask))
		case pShrImm:
			msk := maskSuffix(in.mask)
			if bound(in.a, m, known)>>in.imm&^in.mask == 0 {
				msk = ""
			}
			e.pf("v%d := (%s >> %d)%s\n", d, r(in.a), in.imm, msk)
		default:
			e.emitGeneric(in, r, known, defined)
		}
		e.pf("vals[%d] = v%d\n", d, d)
	}
}

// emitGeneric renders a pGeneric instruction as the statements defining
// local v<dst> (the caller appends the vals store).
func (e *emitter) emitGeneric(in *inst, r func(int32) string, known map[int32]uint64, defined map[int32]bool) {
	m := e.m
	d := in.dst
	msk := maskSuffix(in.mask)
	ab := bound(in.a, m, known)
	var bb uint64
	if m.Nodes[d].NArgs > 1 {
		bb = bound(in.b, m, known)
	}
	switch in.op {
	case rtl.OpAdd:
		e.pf("v%d := (%s + %s)%s\n", d, r(in.a), r(in.b), msk)
	case rtl.OpSub:
		e.pf("v%d := (%s - %s)%s\n", d, r(in.a), r(in.b), msk)
	case rtl.OpMul:
		e.pf("v%d := (%s * %s)%s\n", d, r(in.a), r(in.b), msk)
	case rtl.OpAnd:
		if ab&bb&^in.mask == 0 {
			msk = ""
		}
		e.pf("v%d := %s & %s%s\n", d, r(in.a), r(in.b), msk)
	case rtl.OpOr:
		if (ab|bb)&^in.mask == 0 {
			msk = ""
		}
		e.pf("v%d := (%s | %s)%s\n", d, r(in.a), r(in.b), msk)
	case rtl.OpXor:
		if (ab|bb)&^in.mask == 0 {
			msk = ""
		}
		e.pf("v%d := (%s ^ %s)%s\n", d, r(in.a), r(in.b), msk)
	case rtl.OpNot:
		e.pf("v%d := ^%s%s\n", d, r(in.a), msk)
	case rtl.OpShl:
		e.pf("var v%d uint64\n", d)
		e.pf("if sh := %s; sh < 64 {\nv%d = (%s << sh)%s\n}\n", r(in.b), d, r(in.a), msk)
	case rtl.OpShr:
		e.pf("var v%d uint64\n", d)
		e.pf("if sh := %s; sh < 64 {\nv%d = (%s >> sh)%s\n}\n", r(in.b), d, r(in.a), msk)
	case rtl.OpEq:
		e.pf("var v%d uint64\nif %s == %s {\nv%d = 1\n}\n", d, r(in.a), r(in.b), d)
	case rtl.OpNe:
		e.pf("var v%d uint64\nif %s != %s {\nv%d = 1\n}\n", d, r(in.a), r(in.b), d)
	case rtl.OpLt:
		e.pf("var v%d uint64\nif %s < %s {\nv%d = 1\n}\n", d, r(in.a), r(in.b), d)
	case rtl.OpLe:
		e.pf("var v%d uint64\nif %s <= %s {\nv%d = 1\n}\n", d, r(in.a), r(in.b), d)
	case rtl.OpMux:
		cb := bound(in.c, m, known)
		bmsk, cmsk := msk, msk
		if bb&^in.mask == 0 {
			bmsk = ""
		}
		if cb&^in.mask == 0 {
			cmsk = ""
		}
		e.pf("var v%d uint64\n", d)
		e.pf("if %s != 0 {\nv%d = %s%s\n} else {\nv%d = %s%s\n}\n",
			r(in.a), d, r(in.b), bmsk, d, r(in.c), cmsk)
	case rtl.OpMemRead:
		e.pf("var v%d uint64\n", d)
		// The uint64 conversion keeps a folded-literal address from
		// typing the local as int; it is a no-op for value reads.
		e.pf("if addr := uint64(%s); addr < uint64(len(m%d)) {\nv%d = m%d[addr]%s\n}\n",
			r(in.a), in.mem, d, in.mem, msk)
	default:
		panic(fmt.Sprintf("codegen: cannot emit op %v", in.op))
	}
}
