package codegen_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/rtl"
	"repro/internal/rtl/codegen"
	"repro/internal/testdesigns"
)

// toyJob returns a Toy work list mixing fast and slow items so every
// FSM state is visited.
func toyJob() []uint64 {
	return testdesigns.ToyJob([]uint64{
		testdesigns.ToyItem(false, 0),
		testdesigns.ToyItem(true, 5),
		testdesigns.ToyItem(true, 0),
		testdesigns.ToyItem(false, 0),
		testdesigns.ToyItem(true, 17),
	})
}

func TestPlanSpecializesToyFSM(t *testing.T) {
	ports := testdesigns.Toy()
	p := codegen.Build(ports.M)
	if p.StateCount() < 2 {
		t.Fatalf("Toy plan specialized %d states, want >= 2", p.StateCount())
	}
	if p.StateReg() != ports.State {
		t.Fatalf("plan specialized node %d, want the ctrl FSM register %d",
			p.StateReg(), ports.State)
	}
}

// TestPlanStepMatchesInterpOnToy drives the plan-backed native sim and
// the interpreter through a full Toy job — cycle count, every node
// value on every cycle, every toggle counter, and the output memory
// must be identical. This covers the codegen edge cases in one run:
// memory read and write ports, FSM-state dispatch, and instrumented
// toggle counting.
func TestPlanStepMatchesInterpOnToy(t *testing.T) {
	ports := testdesigns.Toy()
	m := ports.M

	ref := rtl.NewInterpSim(m)
	nat := rtl.NewNativeSim(m, codegen.Build(m).Step)
	if got := nat.Engine(); got != rtl.EngineNative {
		t.Fatalf("native sim reports engine %q", got)
	}
	for _, s := range []*rtl.Sim{ref, nat} {
		s.EnableActivity()
		if err := s.LoadMem("in", toyJob()); err != nil {
			t.Fatal(err)
		}
	}

	const maxCycles = 10000
	for cycle := 0; ; cycle++ {
		if cycle > maxCycles {
			t.Fatal("job did not finish")
		}
		dr := ref.Step()
		dn := nat.Step()
		if dr != dn {
			t.Fatalf("cycle %d: done interp=%v native=%v", cycle, dr, dn)
		}
		for id := range m.Nodes {
			if rv, nv := ref.Value(rtl.NodeID(id)), nat.Value(rtl.NodeID(id)); rv != nv {
				t.Fatalf("cycle %d node %d (%s): interp=%#x native=%#x",
					cycle, id, m.Nodes[id].Op, rv, nv)
			}
		}
		if dr {
			break
		}
	}
	if ref.Cycles() != nat.Cycles() {
		t.Fatalf("cycles: interp=%d native=%d", ref.Cycles(), nat.Cycles())
	}
	rt, nt := ref.Toggles(), nat.Toggles()
	for i := range rt {
		if rt[i] != nt[i] {
			t.Fatalf("toggle[%d]: interp=%d native=%d", i, rt[i], nt[i])
		}
	}
	ro, no := ref.Mem("out"), nat.Mem("out")
	for i := range ro {
		if ro[i] != no[i] {
			t.Fatalf("out[%d]: interp=%#x native=%#x", i, ro[i], no[i])
		}
	}
}

// TestEmitTypechecks emits Go source for a spread of designs — the
// FSM-heavy Toy, lint designs with unusual shapes (unreachable states,
// racing writes, combinational-only logic) — and runs the assembled
// file through the real go/types checker. This catches emitter bugs
// (unused locals, type mismatches, redeclarations) without invoking
// the toolchain.
func TestEmitTypechecks(t *testing.T) {
	mods := map[string]*rtl.Module{
		"toy":         testdesigns.Toy().M,
		"unreachable": testdesigns.UnreachableState(),
		"racy":        testdesigns.RacyWrites(),
		"truncadd":    testdesigns.TruncatingAdd(),
		"datawait":    testdesigns.DataWaitOnly(),
	}
	src := "package p\n\n"
	for _, name := range []string{"toy", "unreachable", "racy", "truncadd", "datawait"} {
		src += codegen.EmitFunc(codegen.Build(mods[name]), "step_"+name) + "\n"
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "gen.go", src, 0)
	if err != nil {
		t.Fatalf("emitted source does not parse: %v\n%s", err, src)
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, nil); err != nil {
		t.Fatalf("emitted source does not typecheck: %v", err)
	}
}

// TestUnspecializedPlan checks a design with no usable FSM still gets a
// working straight-line plan.
func TestUnspecializedPlan(t *testing.T) {
	m := testdesigns.TruncatingAdd()
	p := codegen.Build(m)
	if p.StateCount() != 0 {
		// Not fatal if analysis finds an FSM here — but the plan must
		// still match the interpreter either way.
		t.Logf("TruncatingAdd specialized %d states", p.StateCount())
	}
	ref := rtl.NewInterpSim(m)
	nat := rtl.NewNativeSim(m, p.Step)
	for cycle := 0; cycle < 64; cycle++ {
		dr, dn := ref.Step(), nat.Step()
		if dr != dn {
			t.Fatalf("cycle %d: done interp=%v native=%v", cycle, dr, dn)
		}
		for id := range m.Nodes {
			if rv, nv := ref.Value(rtl.NodeID(id)), nat.Value(rtl.NodeID(id)); rv != nv {
				t.Fatalf("cycle %d node %d: interp=%#x native=%#x", cycle, id, rv, nv)
			}
		}
	}
}
