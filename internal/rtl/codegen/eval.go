package codegen

import "repro/internal/rtl"

// Step executes one cycle of the plan directly — the interpretive
// backend over the same specialized instruction lists the emitter turns
// into Go source. Its signature matches rtl.NativeStep, so
// rtl.NewNativeSim(m, plan.Step) yields a simulator the differential
// tests can run against the other engines on arbitrary modules,
// exercising the partial-evaluation and FSM-dispatch logic without the
// Go toolchain. It allocates a latch scratch per call rather than
// capturing one, keeping the step pure over (vals, mems) as the
// NativeStep contract requires; the emitted code uses stack locals and
// pays no such allocation.
func (p *Plan) Step(vals []uint64, mems [][]uint64) bool {
	m := p.m
	// Phase 1: combinational evaluation — prefix, then the suffix arm
	// specialized for the current state (or the generic default).
	runInsts(p.prefix, vals, mems)
	if p.stateNode >= 0 {
		if ai, ok := p.armOf[vals[p.stateNode]]; ok {
			runInsts(p.arms[ai], vals, mems)
		} else {
			runInsts(p.generic, vals, mems)
		}
	}
	done := vals[m.Done] != 0
	// Phase 2: memory writes commit.
	for i := range m.Writes {
		w := &m.Writes[i]
		if vals[w.En] != 0 {
			data := mems[w.Mem]
			if addr := vals[w.Addr]; addr < uint64(len(data)) {
				data[addr] = vals[w.Data]
			}
		}
	}
	// Phase 3: registers latch simultaneously.
	latch := make([]uint64, len(m.Regs))
	for i := range m.Regs {
		r := &m.Regs[i]
		latch[i] = vals[r.Next] & m.Nodes[r.Node].Mask()
	}
	for i := range m.Regs {
		vals[m.Regs[i].Node] = latch[i]
	}
	return done
}

func runInsts(insts []inst, vals []uint64, mems [][]uint64) {
	for i := range insts {
		in := &insts[i]
		switch in.kind {
		case pConst:
			vals[in.dst] = in.imm
		case pCopy:
			vals[in.dst] = vals[in.a] & in.mask
		case pShlImm:
			vals[in.dst] = (vals[in.a] << in.imm) & in.mask
		case pShrImm:
			vals[in.dst] = (vals[in.a] >> in.imm) & in.mask
		default:
			switch in.op {
			case rtl.OpMemRead:
				data := mems[in.mem]
				if addr := vals[in.a]; addr < uint64(len(data)) {
					vals[in.dst] = data[addr] & in.mask
				} else {
					vals[in.dst] = 0
				}
			case rtl.OpMux:
				if vals[in.a] != 0 {
					vals[in.dst] = vals[in.b] & in.mask
				} else {
					vals[in.dst] = vals[in.c] & in.mask
				}
			case rtl.OpAdd:
				vals[in.dst] = (vals[in.a] + vals[in.b]) & in.mask
			case rtl.OpSub:
				vals[in.dst] = (vals[in.a] - vals[in.b]) & in.mask
			case rtl.OpMul:
				vals[in.dst] = (vals[in.a] * vals[in.b]) & in.mask
			case rtl.OpAnd:
				vals[in.dst] = vals[in.a] & vals[in.b] & in.mask
			case rtl.OpOr:
				vals[in.dst] = (vals[in.a] | vals[in.b]) & in.mask
			case rtl.OpXor:
				vals[in.dst] = (vals[in.a] ^ vals[in.b]) & in.mask
			case rtl.OpNot:
				vals[in.dst] = ^vals[in.a] & in.mask
			case rtl.OpShl:
				if sh := vals[in.b]; sh < 64 {
					vals[in.dst] = (vals[in.a] << sh) & in.mask
				} else {
					vals[in.dst] = 0
				}
			case rtl.OpShr:
				if sh := vals[in.b]; sh < 64 {
					vals[in.dst] = (vals[in.a] >> sh) & in.mask
				} else {
					vals[in.dst] = 0
				}
			case rtl.OpEq:
				if vals[in.a] == vals[in.b] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case rtl.OpNe:
				if vals[in.a] != vals[in.b] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case rtl.OpLt:
				if vals[in.a] < vals[in.b] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			case rtl.OpLe:
				if vals[in.a] <= vals[in.b] {
					vals[in.dst] = 1
				} else {
					vals[in.dst] = 0
				}
			}
		}
	}
}
