// Package codegen translates a netlist into specialized straight-line
// Go — the generation half of the native execution engine (the runtime
// half is rtl's NativeStep registry).
//
// The translation is Verilator's move taken one step further than the
// compiled engine: where Compile lowers the node DAG to a flat
// instruction stream that still pays one dispatch per instruction per
// cycle, codegen unrolls the cycle body into ordinary Go statements the
// Go compiler optimizes like any other code — constants become
// literals, width masks are baked in (and elided where the operand
// widths prove them redundant), intermediate values live in locals the
// register allocator can keep in machine registers, and instruction
// dispatch disappears entirely.
//
// On top of the unrolling, the translator specializes control flow per
// FSM state. The structural analyses already recover each design's FSM
// (analyze) and the set of states actually reachable from reset under
// the pinned abstract values (absint.RefinedReachable). The generated
// step dispatches one Go switch on the latched state register and runs
// a per-state basic block in which the state is a known constant:
// state comparisons fold to literals, muxes they select collapse to
// copies, and whole control cones evaluate at generation time. Dead
// (unreachable) states get no arm at all; a default arm runs the
// unspecialized code so the generated step stays total even if an
// analysis bug ever produced an impossible state.
//
// Both backends consume the same Plan: the Go source emitter (emit.go,
// used by cmd/rtlgen to produce the checked-in internal/rtl/native
// registry) and a closure evaluator (eval.go) that executes the plan
// directly. The evaluator exists so the differential tests and
// FuzzEngineDifferential can check the specialization logic on
// arbitrary random netlists without invoking the Go toolchain; the
// emitted source for the benchmark suite is then checked bit-exact by
// the suite differential tests, and checked fresh by CI's
// generated-code drift gate.
//
// Bit-exactness contract: a plan step writes every node's value into
// the value array each cycle and mirrors the interpreter's four-phase
// cycle (combinational evaluation in SSA order, memory-write commit,
// simultaneous register latch, caller-side toggle counting), so
// Value/RegValue/Toggles/Mem observe state identical to the
// interpreter on every cycle.
package codegen

import (
	"sort"

	"repro/internal/absint"
	"repro/internal/analyze"
	"repro/internal/rtl"
)

// maxStates caps FSM-state specialization: beyond this many reachable
// states the per-state arms stop paying for their code size (and the
// generated source would bloat linearly), so the plan falls back to
// one unspecialized straight-line body.
const maxStates = 16

// kind discriminates plan instruction forms. pGeneric evaluates the
// node's op over current values; the others are partial-evaluation
// residues.
type kind uint8

const (
	// pGeneric evaluates Op over the current value array.
	pGeneric kind = iota
	// pConst stores a value proven constant in this context.
	pConst
	// pCopy stores vals[a] & mask — a mux whose selector is known.
	pCopy
	// pShlImm / pShrImm shift by a known amount < 64.
	pShlImm
	pShrImm
)

// inst is one planned operation. dst/a/b/c index the value array; mask
// is the destination width mask; imm is the pConst value or the
// pShlImm/pShrImm shift amount.
type inst struct {
	kind kind
	op   rtl.Op
	dst  int32
	a    int32
	b    int32
	c    int32
	mem  int32
	mask uint64
	imm  uint64
}

// Plan is a netlist translated for specialized execution: a
// state-independent prefix, optionally a per-state specialization of
// the state-dependent suffix, and the unspecialized suffix as the
// default arm. Immutable once built; safe to share across Sims.
type Plan struct {
	m *rtl.Module
	// prefix holds the comb nodes independent of the specialized state
	// register, in SSA order (when no FSM is specialized, every comb
	// node is here and the suffix pieces are empty).
	prefix []inst
	// stateNode is the specialized FSM's OpReg node, or -1.
	stateNode int32
	// stateVals are the reachable states, ascending; arms[i] is the
	// suffix specialized under stateVals[i].
	stateVals []uint64
	arms      [][]inst
	// generic is the unspecialized suffix (the default arm).
	generic []inst
	armOf   map[uint64]int
}

// Module returns the module this plan was built from.
func (p *Plan) Module() *rtl.Module { return p.m }

// StateCount reports how many FSM states the plan specializes (0 when
// unspecialized).
func (p *Plan) StateCount() int { return len(p.stateVals) }

// StateReg returns the specialized state register's node, or
// rtl.InvalidNode.
func (p *Plan) StateReg() rtl.NodeID {
	if p.stateNode < 0 {
		return rtl.InvalidNode
	}
	return rtl.NodeID(p.stateNode)
}

// Build translates a validated module into a plan. It never fails: a
// module with no (usable) FSM simply gets an unspecialized plan.
func Build(m *rtl.Module) *Plan {
	p := &Plan{m: m, stateNode: -1}

	stateNode, states := pickFSM(m)

	// Base knowledge: constants hold their literal value everywhere.
	baseKnown := make(map[int32]uint64)
	for i := range m.Nodes {
		if n := &m.Nodes[i]; n.Op == rtl.OpConst {
			baseKnown[int32(i)] = n.Const & n.Mask()
		}
	}

	if stateNode < 0 {
		p.prefix = planOps(m, combNodes(m, nil), copyKnown(baseKnown))
		return p
	}

	// Partition combinational nodes into the state-independent prefix
	// and the state-dependent suffix. Dependence flows through
	// combinational args only: other registers latch at cycle end, so
	// they cannot carry this cycle's state value back into the prefix.
	dep := make([]bool, len(m.Nodes))
	dep[stateNode] = true
	for i := range m.Nodes {
		n := &m.Nodes[i]
		switch n.Op {
		case rtl.OpConst, rtl.OpInput, rtl.OpReg:
			continue
		}
		for a := 0; a < int(n.NArgs); a++ {
			if dep[n.Args[a]] {
				dep[i] = true
				break
			}
		}
	}
	var prefixIDs, suffixIDs []rtl.NodeID
	for i := range m.Nodes {
		switch m.Nodes[i].Op {
		case rtl.OpConst, rtl.OpInput, rtl.OpReg:
			continue
		}
		if dep[i] {
			suffixIDs = append(suffixIDs, rtl.NodeID(i))
		} else {
			prefixIDs = append(prefixIDs, rtl.NodeID(i))
		}
	}

	// Size guard: the arms duplicate the suffix once per state. Past
	// this budget the emitted source (and icache footprint) grows out
	// of proportion to the win, so fall back to one straight-line body
	// — still dispatch-free, just not state-specialized.
	if len(suffixIDs)*(len(states)+1) > 60000 {
		p.stateNode = -1
		p.prefix = planOps(m, combNodes(m, nil), copyKnown(baseKnown))
		return p
	}

	prefixKnown := copyKnown(baseKnown)
	p.prefix = planOps(m, prefixIDs, prefixKnown)

	p.stateNode = int32(stateNode)
	p.stateVals = states
	p.armOf = make(map[uint64]int, len(states))
	for ai, sv := range states {
		known := copyKnown(prefixKnown)
		known[int32(stateNode)] = sv
		p.arms = append(p.arms, planOps(m, suffixIDs, known))
		p.armOf[sv] = ai
	}
	p.generic = planOps(m, suffixIDs, copyKnown(prefixKnown))
	return p
}

// pickFSM chooses the FSM register to specialize on: the one whose
// combinational cone is largest, among FSMs with a usable reachable
// state set (2..maxStates states, per absint's refinement). Returns
// (-1, nil) when no FSM qualifies.
func pickFSM(m *rtl.Module) (rtl.NodeID, []uint64) {
	sa := analyze.Analyze(m)
	if len(sa.FSMs) == 0 {
		return rtl.InvalidNode, nil
	}
	av := absint.Analyze(m)
	bestNode, bestScore := rtl.InvalidNode, -1
	var bestStates []uint64
	for fi := range sa.FSMs {
		f := &sa.FSMs[fi]
		reach := absint.RefinedReachable(av, sa, fi)
		if len(reach) < 2 || len(reach) > maxStates {
			continue
		}
		score := coneSize(m, f.StateNode)
		if score > bestScore {
			states := make([]uint64, 0, len(reach))
			for s := range reach { //detlint:allow sorted immediately below
				states = append(states, s)
			}
			sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
			bestNode, bestScore, bestStates = f.StateNode, score, states
		}
	}
	return bestNode, bestStates
}

// coneSize counts the combinational nodes downstream of a node.
func coneSize(m *rtl.Module, root rtl.NodeID) int {
	dep := make([]bool, len(m.Nodes))
	dep[root] = true
	count := 0
	for i := range m.Nodes {
		n := &m.Nodes[i]
		switch n.Op {
		case rtl.OpConst, rtl.OpInput, rtl.OpReg:
			continue
		}
		for a := 0; a < int(n.NArgs); a++ {
			if dep[n.Args[a]] {
				dep[i] = true
				count++
				break
			}
		}
	}
	return count
}

// combNodes lists the module's combinational node IDs in SSA order,
// excluding skip (used for the unspecialized whole-module plan).
func combNodes(m *rtl.Module, skip []bool) []rtl.NodeID {
	var ids []rtl.NodeID
	for i := range m.Nodes {
		switch m.Nodes[i].Op {
		case rtl.OpConst, rtl.OpInput, rtl.OpReg:
			continue
		}
		if skip != nil && skip[i] {
			continue
		}
		ids = append(ids, rtl.NodeID(i))
	}
	return ids
}

func copyKnown(src map[int32]uint64) map[int32]uint64 {
	dst := make(map[int32]uint64, len(src))
	for k, v := range src { //detlint:allow value copy; iteration order immaterial
		dst[k] = v
	}
	return dst
}

// planOps partially evaluates the listed nodes (in the given SSA
// order) under the known-value map, appending to known as values are
// proven, and returns the residual instruction list.
func planOps(m *rtl.Module, ids []rtl.NodeID, known map[int32]uint64) []inst {
	out := make([]inst, 0, len(ids))
	for _, id := range ids {
		n := &m.Nodes[id]
		in := inst{
			kind: pGeneric,
			op:   n.Op,
			dst:  int32(id),
			a:    int32(n.Args[0]),
			b:    int32(n.Args[1]),
			c:    int32(n.Args[2]),
			mem:  n.Mem,
			mask: n.Mask(),
		}
		var argv [3]uint64
		argKnown := true
		for a := 0; a < int(n.NArgs); a++ {
			v, ok := known[int32(n.Args[a])]
			if !ok {
				argKnown = false
				break
			}
			argv[a] = v
		}
		switch {
		case argKnown && n.Op != rtl.OpMemRead:
			v := rtl.EvalNode(n, argv)
			known[int32(id)] = v
			in.kind, in.imm = pConst, v
		case n.Op == rtl.OpMux:
			if sel, ok := known[in.a]; ok {
				src := in.b
				if sel == 0 {
					src = in.c
				}
				if v, ok := known[src]; ok {
					v &= in.mask
					known[int32(id)] = v
					in.kind, in.imm = pConst, v
				} else {
					in.kind, in.a = pCopy, src
				}
			}
		case n.Op == rtl.OpShl || n.Op == rtl.OpShr:
			if sh, ok := known[in.b]; ok {
				if sh >= 64 {
					known[int32(id)] = 0
					in.kind, in.imm = pConst, 0
				} else if n.Op == rtl.OpShl {
					in.kind, in.imm = pShlImm, sh
				} else {
					in.kind, in.imm = pShrImm, sh
				}
			}
		}
		out = append(out, in)
	}
	return out
}
