package native_test

import (
	"testing"

	"repro/internal/absint"
	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/rtl"
	"repro/internal/suite"

	_ "repro/internal/rtl/native"
)

// TestRegistryCoversSuiteShapes asserts the checked-in generated code
// actually resolves for every netlist shape the production flows
// simulate — raw design, instrumented design, pruned twin — on all 7
// benchmarks. A miss here means internal/rtl/native is stale:
// regenerate with `go generate ./internal/rtl/native`.
func TestRegistryCoversSuiteShapes(t *testing.T) {
	for _, spec := range suite.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mods := map[string]*rtl.Module{"raw": spec.Build()}
			ins, err := instrument.Instrument(spec.Build())
			if err != nil {
				t.Fatal(err)
			}
			mods["instrumented"] = ins.M
			featRegs := make([]int, len(ins.Features))
			for i, f := range ins.Features {
				featRegs[i] = f.Witness
			}
			pm, _ := absint.Prune(ins.M, featRegs)
			mods["pruned"] = pm
			for shape, m := range mods { //detlint:allow independent subtests, order immaterial for pass/fail
				s := rtl.NewSimEngine(m, rtl.EngineNative)
				if got := s.Engine(); got != rtl.EngineNative {
					t.Errorf("%s %s: engine %q (registry stale? run go generate ./internal/rtl/native)",
						spec.Name, shape, got)
				}
			}
		})
	}
}

// TestGeneratedCodeMatchesInterpOnSuite is the differential check of
// the emitted (checked-in) code itself, as opposed to the codegen plan
// evaluator the rtl package fuzzes: for every benchmark, real jobs run
// on the generated native sims for the raw design and the trained
// predictor slice, and ticks, node values, toggles, and memories must
// match the interpreter bit-exactly.
func TestGeneratedCodeMatchesInterpOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite run in -short mode")
	}
	for _, spec := range suite.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if !core.PruningEnabled() {
				// The checked-in slices are generated under default
				// pruning; REPRO_PRUNE=0 slices legitimately fall back
				// to compiled (covered by TestNativeFallback in rtl).
				t.Skip("pruning disabled; generated slices target the pruned flow")
			}
			pred, err := core.Train(spec, core.Options{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			jobs := spec.TestJobs(17)
			if len(jobs) > 3 {
				jobs = jobs[:3]
			}
			for _, m := range []*rtl.Module{spec.Build(), pred.Slice.M} {
				nat := rtl.NewSimEngine(m, rtl.EngineNative)
				if got := nat.Engine(); got != rtl.EngineNative {
					t.Fatalf("%s: engine %q, want native (stale registry?)", m.Name, got)
				}
				ref := rtl.NewInterpSim(m)
				nat.EnableActivity()
				ref.EnableActivity()
				for ji, job := range jobs {
					rt, err := accel.RunJob(ref, job, spec.MaxTicks)
					if err != nil {
						t.Fatal(err)
					}
					nt, err := accel.RunJob(nat, job, spec.MaxTicks)
					if err != nil {
						t.Fatal(err)
					}
					if nt != rt {
						t.Fatalf("%s job %d: ticks %d (native) != %d (interp)", m.Name, ji, nt, rt)
					}
					for id := 0; id < m.NumNodes(); id++ {
						if nv, rv := nat.Value(rtl.NodeID(id)), ref.Value(rtl.NodeID(id)); nv != rv {
							t.Fatalf("%s job %d node %d (%s): %#x (native) != %#x (interp)",
								m.Name, ji, id, m.Nodes[id].Op, nv, rv)
						}
					}
					ng, rg := nat.Toggles(), ref.Toggles()
					for id := range rg {
						if ng[id] != rg[id] {
							t.Fatalf("%s job %d node %d: toggles %d (native) != %d (interp)",
								m.Name, ji, id, ng[id], rg[id])
						}
					}
					for _, mem := range m.Mems {
						nm, rm := nat.Mem(mem.Name), ref.Mem(mem.Name)
						for a := range rm {
							if nm[a] != rm[a] {
								t.Fatalf("%s job %d mem %s[%d]: %#x (native) != %#x (interp)",
									m.Name, ji, mem.Name, a, nm[a], rm[a])
							}
						}
					}
				}
			}
		})
	}
}
