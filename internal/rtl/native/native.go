// Package native holds the pre-generated (checked-in) native
// simulators for the benchmark suite: one specialized straight-line Go
// step function per distinct netlist shape the production flows
// simulate — raw designs, instrumented designs, their pruned twins,
// and predictor slices. The gen_*.go files are produced by cmd/rtlgen
// from internal/rtl/codegen plans and register themselves with the rtl
// engine registry at init, so importing this package (internal/core
// does, blank) is all it takes for rtl.NewSimEngine(rtl.EngineNative)
// to resolve them.
//
// Netlists without a registered step — random fuzz modules,
// testdesigns, benchmarks edited since the last regeneration — fall
// back to the compiled engine; rtl.NativeFallbacks counts those so a
// stale registry is observable, and CI's drift gate (go generate
// ./... && git diff --exit-code) keeps the checked-in code current.
package native

//go:generate go run repro/cmd/rtlgen -out .
