package rtl

import (
	"sort"
	"sync"
	"sync/atomic"
)

// native.go is the runtime half of the codegen execution engine: a
// process-wide registry mapping netlist fingerprints to pre-generated,
// specialized step functions. The generation half lives in
// internal/rtl/codegen (the translator) and internal/rtl/native (the
// checked-in generated code for the benchmark suite, produced by
// cmd/rtlgen via go:generate).
//
// A NativeStep is one cycle of one specific netlist compiled to
// straight-line Go: no instruction dispatch, constants folded into the
// code, masks baked in, and FSM-state-specialized basic blocks. It
// still writes every node's value into the Sim's value array each
// cycle, so Value, RegValue, toggle counting, VCD dumps, and the
// differential tests observe state bit-identical to the interpreter.
//
// Registration is keyed on Fingerprint(m): two modules with equal
// fingerprints simulate identically, so a step generated from one is
// valid for the other. Netlists without a registered step (random fuzz
// modules, testdesigns, freshly edited benchmarks before regeneration)
// transparently fall back to the compiled engine; the fallback is
// observable through NativeFallbacks so a silently stale registry
// cannot masquerade as a codegen win.

// NativeStep executes one cycle of a specific netlist: combinational
// evaluation in SSA order, memory-write commit, simultaneous register
// latch — the same four-phase contract as Sim.Step (toggle counting is
// phase 4, handled by the caller). It must write every node's value
// into vals and return whether Done evaluated nonzero this cycle.
//
// A NativeStep must be pure over (vals, mems): implementations hold no
// mutable captured state, so one step function is shared by any number
// of concurrently running Sim clones.
type NativeStep func(vals []uint64, mems [][]uint64) bool

// nativeEntry is one registered generated simulator.
type nativeEntry struct {
	name string
	step NativeStep
}

var (
	nativeMu  sync.RWMutex
	nativeReg = map[string]nativeEntry{}
	// nativeFallbacks counts NewSimEngine(native) calls that found no
	// registered step and fell back to the compiled engine.
	nativeFallbacks atomic.Uint64
)

// RegisterNative binds a generated step function to a netlist
// fingerprint (see Fingerprint). Generated code calls it from init;
// name labels the entry for diagnostics. A later registration for the
// same fingerprint wins, which is harmless because equal fingerprints
// imply identical simulation semantics.
func RegisterNative(fingerprint, name string, step NativeStep) {
	if step == nil {
		panic("rtl: RegisterNative with nil step")
	}
	nativeMu.Lock()
	nativeReg[fingerprint] = nativeEntry{name: name, step: step}
	nativeMu.Unlock()
}

// NativeStepFor returns the registered generated step for the module's
// fingerprint, if any.
func NativeStepFor(m *Module) (NativeStep, bool) {
	nativeMu.RLock()
	e, ok := nativeReg[Fingerprint(m)]
	nativeMu.RUnlock()
	return e.step, ok
}

// NativeNames returns the names of all registered generated
// simulators, sorted (for tests and diagnostics).
func NativeNames() []string {
	nativeMu.RLock()
	names := make([]string, 0, len(nativeReg))
	for _, e := range nativeReg { //detlint:allow sorted immediately below
		names = append(names, e.name)
	}
	nativeMu.RUnlock()
	sort.Strings(names)
	return names
}

// NativeFallbacks reports how many native-engine simulator requests
// fell back to the compiled engine because no generated step was
// registered for the netlist. Monotone; safe to read concurrently.
func NativeFallbacks() uint64 { return nativeFallbacks.Load() }

// NewNativeSim prepares a simulator that executes the given generated
// step function for the module. The step must have been generated from
// a module with the same fingerprint; NewSimEngine does the lookup,
// this constructor exists for the codegen package's own differential
// tests (which pair arbitrary modules with freshly built plans).
func NewNativeSim(m *Module, step NativeStep) *Sim {
	if step == nil {
		panic("rtl: NewNativeSim with nil step")
	}
	s := newSimState(m)
	s.nat = step
	s.Reset()
	return s
}
