package rtl

// Area modeling. The paper obtains area from a Synopsys place-and-route
// flow with a TSMC 65 nm library; our substitute assigns each netlist
// element a gate-equivalent cost and scales by a per-design calibration
// constant (µm² per gate equivalent). Ratios between a slice and its
// parent design — the quantities the evaluation actually reports — are
// independent of the calibration constant.

// GateCost returns the gate-equivalent cost of one node at its width.
// Costs are rough standard-cell weights: a register bit costs more than
// a 2-input gate; multipliers grow quadratically with width; memories
// are costed separately by MemGates.
func GateCost(n *Node) float64 {
	w := float64(n.Width)
	switch n.Op {
	case OpConst, OpInput:
		return 0
	case OpReg:
		return 6 * w // DFF ≈ 6 gate equivalents per bit
	case OpAdd, OpSub:
		return 3 * w // ripple adder cell per bit
	case OpMul:
		return 1.2 * w * w // array multiplier
	case OpAnd, OpOr, OpXor:
		return 1 * w
	case OpNot:
		return 0.5 * w
	case OpShl, OpShr:
		return 2 * w // barrel shifter stage proxy
	case OpEq, OpNe:
		return 1.5 * w
	case OpLt, OpLe:
		return 2 * w
	case OpMux:
		return 1.5 * w
	case OpMemRead:
		return 2 * w // read port mux/drivers
	default:
		return w
	}
}

// MemGates returns the gate-equivalent cost of a memory array. SRAM
// bits are denser than logic; ROMs denser still.
func MemGates(m *Mem) float64 {
	bits := float64(m.Words) * 32 // cost by word count at a nominal 32-bit word
	if m.ROM {
		return 0.3 * bits
	}
	return 1.0 * bits
}

// AreaStats summarizes the sizes of a module.
type AreaStats struct {
	// LogicGates is the gate-equivalent count of combinational logic.
	LogicGates float64
	// RegGates is the gate-equivalent count of sequential elements.
	RegGates float64
	// ROMGates is the gate-equivalent count of read-only tables, which
	// synthesize to combinational logic on an ASIC (S-boxes, constant
	// tables).
	ROMGates float64
	// MemGates is the gate-equivalent count of RAM arrays.
	MemGates float64
	// Nodes and Regs are raw element counts.
	Nodes int
	Regs  int
}

// Total returns the total gate-equivalent count.
func (a AreaStats) Total() float64 {
	return a.LogicGates + a.RegGates + a.ROMGates + a.MemGates
}

// Stats computes the area statistics of a module.
func Stats(m *Module) AreaStats {
	var st AreaStats
	st.Nodes = len(m.Nodes)
	st.Regs = len(m.Regs)
	for i := range m.Nodes {
		n := &m.Nodes[i]
		c := GateCost(n)
		if n.Op == OpReg {
			st.RegGates += c
		} else {
			st.LogicGates += c
		}
	}
	for _, mem := range m.Mems {
		if mem.ROM {
			st.ROMGates += MemGates(mem)
		} else {
			st.MemGates += MemGates(mem)
		}
	}
	return st
}

// LogicArea returns the synthesized-logic gate count (combinational
// logic, registers, and ROM tables). RAM scratchpads are excluded: they
// are shared with the predictor slice in the paper's system model
// (time-multiplexed access, Figure 5), so slice-vs-full area ratios
// must not double-count them.
func (a AreaStats) LogicArea() float64 { return a.LogicGates + a.RegGates + a.ROMGates }
