package rtl

import (
	"errors"
	"fmt"
)

// Sim is a cycle-accurate interpreter for a Module. One Sim instance can
// run many jobs back to back; Reset restores registers and clears
// scratchpads between jobs.
//
// Evaluation model per cycle:
//  1. combinational nodes are evaluated in ID order (SSA guarantees
//     arguments are ready; OpReg nodes read latched state),
//  2. memory write ports with En != 0 commit,
//  3. registers latch their Next values,
//  4. activity (toggle) counters are updated for the energy model.
type Sim struct {
	m *Module
	// vals holds the current cycle's node values.
	vals []uint64
	// prev holds the previous cycle's values for toggle counting.
	prev []uint64
	// inputs are the values driven on OpInput nodes.
	inputs map[NodeID]uint64
	// toggles accumulates per-node value-change counts across a Run; a
	// proxy for switching activity used by the energy model.
	toggles []uint64
	// countToggles enables activity tracking (small slowdown).
	countToggles bool
	// latch is scratch space for the simultaneous register update.
	latch []uint64
	// cycles counts the cycles executed since the last Reset.
	cycles uint64
}

// ErrNoProgress is returned by Run when the cycle limit is reached
// before the module raises Done.
var ErrNoProgress = errors.New("rtl: cycle limit reached before done")

// NewSim prepares a simulator for the module. The module must be valid
// (Builder.Build validates; hand-built modules should call Validate).
func NewSim(m *Module) *Sim {
	s := &Sim{
		m:      m,
		vals:   make([]uint64, len(m.Nodes)),
		prev:   make([]uint64, len(m.Nodes)),
		inputs: make(map[NodeID]uint64),
	}
	s.Reset()
	return s
}

// EnableActivity turns on per-node toggle counting for energy modeling.
func (s *Sim) EnableActivity() {
	s.countToggles = true
	if s.toggles == nil {
		s.toggles = make([]uint64, len(s.m.Nodes))
	}
}

// Toggles returns the per-node toggle counts accumulated since Reset.
// The slice is owned by the simulator; callers must not modify it.
func (s *Sim) Toggles() []uint64 { return s.toggles }

// Reset restores registers to their init values, zeroes non-ROM memory,
// clears inputs, the cycle counter, and activity counts.
func (s *Sim) Reset() {
	for i := range s.vals {
		s.vals[i] = 0
	}
	for i := range s.m.Regs {
		r := &s.m.Regs[i]
		s.vals[r.Node] = r.Init
	}
	for i := range s.m.Nodes {
		if s.m.Nodes[i].Op == OpConst {
			s.vals[i] = s.m.Nodes[i].Const & s.m.Nodes[i].Mask()
		}
	}
	for _, mem := range s.m.Mems {
		if mem.ROM {
			continue
		}
		if len(mem.Data) != mem.Words {
			mem.Data = make([]uint64, mem.Words)
		}
		for i := range mem.Data {
			mem.Data[i] = 0
		}
	}
	for k := range s.inputs {
		delete(s.inputs, k)
	}
	for i := range s.toggles {
		s.toggles[i] = 0
	}
	s.cycles = 0
	copy(s.prev, s.vals)
}

// SetInput drives an input port for subsequent cycles.
func (s *Sim) SetInput(id NodeID, v uint64) {
	if s.m.Nodes[id].Op != OpInput {
		panic(fmt.Sprintf("rtl: SetInput on non-input node %d", id))
	}
	s.inputs[id] = v & s.m.Nodes[id].Mask()
}

// LoadMem fills a named scratchpad with job input data (the DMA transfer
// of the paper's system model). Excess words are zero.
func (s *Sim) LoadMem(name string, data []uint64) error {
	mem := s.m.MemByName(name)
	if mem == nil {
		return fmt.Errorf("rtl: module %s has no memory %q", s.m.Name, name)
	}
	if mem.ROM {
		return fmt.Errorf("rtl: memory %q is a ROM", name)
	}
	if len(data) > mem.Words {
		return fmt.Errorf("rtl: %d words exceed memory %q size %d", len(data), name, mem.Words)
	}
	if len(mem.Data) != mem.Words {
		mem.Data = make([]uint64, mem.Words)
	}
	copy(mem.Data, data)
	for i := len(data); i < mem.Words; i++ {
		mem.Data[i] = 0
	}
	return nil
}

// Mem returns the named memory's current contents (aliased, not copied).
func (s *Sim) Mem(name string) []uint64 {
	mem := s.m.MemByName(name)
	if mem == nil {
		return nil
	}
	return mem.Data
}

// Value returns the value computed for a node in the last executed
// cycle (for OpReg nodes, the current latched state).
func (s *Sim) Value(id NodeID) uint64 { return s.vals[id] }

// Cycles returns the number of cycles executed since Reset.
func (s *Sim) Cycles() uint64 { return s.cycles }

// Step executes one cycle and reports whether Done was high.
func (s *Sim) Step() bool {
	m := s.m
	vals := s.vals
	// Phase 1: combinational evaluation in SSA order.
	for i := range m.Nodes {
		n := &m.Nodes[i]
		switch n.Op {
		case OpConst, OpReg:
			// Constants preloaded; registers hold latched state.
			continue
		case OpInput:
			vals[i] = s.inputs[NodeID(i)]
		case OpMemRead:
			mem := m.Mems[n.Mem]
			addr := vals[n.Args[0]]
			if addr < uint64(len(mem.Data)) {
				vals[i] = mem.Data[addr] & n.Mask()
			} else {
				vals[i] = 0
			}
		case OpMux:
			if vals[n.Args[0]] != 0 {
				vals[i] = vals[n.Args[1]] & n.Mask()
			} else {
				vals[i] = vals[n.Args[2]] & n.Mask()
			}
		case OpAdd:
			vals[i] = (vals[n.Args[0]] + vals[n.Args[1]]) & n.Mask()
		case OpSub:
			vals[i] = (vals[n.Args[0]] - vals[n.Args[1]]) & n.Mask()
		case OpEq:
			if vals[n.Args[0]] == vals[n.Args[1]] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		case OpNe:
			if vals[n.Args[0]] != vals[n.Args[1]] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		case OpLt:
			if vals[n.Args[0]] < vals[n.Args[1]] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		case OpLe:
			if vals[n.Args[0]] <= vals[n.Args[1]] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		default:
			var a [3]uint64
			for k := 0; k < int(n.NArgs); k++ {
				a[k] = vals[n.Args[k]]
			}
			vals[i] = evalOp(n, a)
		}
	}
	done := vals[m.Done] != 0
	// Phase 2: memory writes commit.
	for i := range m.Writes {
		w := &m.Writes[i]
		if vals[w.En] != 0 {
			mem := m.Mems[w.Mem]
			addr := vals[w.Addr]
			if addr < uint64(len(mem.Data)) {
				mem.Data[addr] = vals[w.Data]
			}
		}
	}
	// Phase 3: registers latch simultaneously. Next values are read into
	// a scratch slice first so a register whose Next aliases another
	// register's node observes the pre-latch value.
	if cap(s.latch) < len(m.Regs) {
		s.latch = make([]uint64, len(m.Regs))
	}
	latch := s.latch[:len(m.Regs)]
	for i := range m.Regs {
		r := &m.Regs[i]
		latch[i] = vals[r.Next] & m.Nodes[r.Node].Mask()
	}
	for i := range m.Regs {
		vals[m.Regs[i].Node] = latch[i]
	}
	// Phase 4: activity accounting.
	if s.countToggles {
		prev := s.prev
		tg := s.toggles
		for i := range vals {
			if vals[i] != prev[i] {
				tg[i]++
				prev[i] = vals[i]
			}
		}
	}
	s.cycles++
	return done
}

// Run steps the module until Done is raised, returning the number of
// cycles taken (inclusive of the done cycle). If maxCycles elapses
// first, it returns ErrNoProgress.
func (s *Sim) Run(maxCycles uint64) (uint64, error) {
	start := s.cycles
	for s.cycles-start < maxCycles {
		if s.Step() {
			return s.cycles - start, nil
		}
	}
	return s.cycles - start, fmt.Errorf("%w (module %s, limit %d)", ErrNoProgress, s.m.Name, maxCycles)
}

// RegValue returns the latched value of register index i.
func (s *Sim) RegValue(i int) uint64 { return s.vals[s.m.Regs[i].Node] }
