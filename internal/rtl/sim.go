package rtl

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// Engine names a simulation execution strategy. Three engines share
// one cycle-accurate semantics (bit-exact values, cycle counts, toggle
// counters, memory contents — enforced by differential tests):
//
//   - EngineCompiled executes the flat specialized instruction stream
//     produced by Compile; the default, fastest for designs whose
//     activity is dense.
//   - EngineEvent is the levelized event-driven evaluator (event.go):
//     it re-evaluates only the cone of values that changed, making
//     wait-state cycles near-free; fastest for the control-dominated
//     accelerators the paper targets.
//   - EngineInterp walks the Node table directly; the reference
//     implementation for differential testing.
//   - EngineBatch simulates up to MaxBatchLanes independent jobs of the
//     same netlist at once (batch.go): 1-bit control signals are
//     bit-sliced one-lane-per-bit into uint64 words and multi-bit
//     datapath values run in structure-of-arrays lane loops. It has its
//     own simulator type (BatchSim); NewSimEngine falls back to the
//     compiled engine for callers that need a scalar Sim.
//   - EngineNative executes pre-generated straight-line Go specialized
//     to one netlist (see native.go and internal/rtl/codegen): no
//     instruction dispatch at all, the fastest single-job engine.
//     Netlists without a registered generated step fall back to the
//     compiled engine (counted in NativeFallbacks).
type Engine string

const (
	EngineCompiled Engine = "compiled"
	EngineInterp   Engine = "interp"
	EngineEvent    Engine = "event"
	EngineBatch    Engine = "batch"
	EngineNative   Engine = "native"
)

// ParseEngine validates an engine name ("" selects the compiled
// default), for threading CLI flags through to NewSim.
func ParseEngine(name string) (Engine, error) {
	switch Engine(name) {
	case "", EngineCompiled:
		return EngineCompiled, nil
	case EngineInterp, EngineEvent, EngineBatch, EngineNative:
		return Engine(name), nil
	}
	return "", fmt.Errorf("rtl: unknown engine %q (have compiled, event, interp, batch, native)", name)
}

// defaultEngine holds the Engine NewSim selects; set by init from the
// REPRO_ENGINE environment variable and overridden by SetDefaultEngine.
var defaultEngine atomic.Value

func init() {
	e, err := ParseEngine(os.Getenv("REPRO_ENGINE"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtl: ignoring REPRO_ENGINE: %v\n", err)
		e = EngineCompiled
	}
	defaultEngine.Store(e)
}

// SetDefaultEngine selects the engine NewSim (and therefore the whole
// train/trace/experiment stack) uses. It is how cmd/dvfsim and
// cmd/rtlsim thread their -engine flag through; the REPRO_ENGINE
// environment variable provides the initial value. Safe to call
// concurrently.
func SetDefaultEngine(e Engine) error {
	parsed, err := ParseEngine(string(e))
	if err != nil {
		return err
	}
	defaultEngine.Store(parsed)
	return nil
}

// DefaultEngine returns the engine NewSim currently selects.
func DefaultEngine() Engine {
	return defaultEngine.Load().(Engine)
}

// Sim is a cycle-accurate simulator for a Module. By default it
// executes a compiled Program (see Compile); NewInterpSim builds one
// that interprets the Node table directly, kept as an escape hatch and
// as the reference engine for differential testing. One Sim instance
// can run many jobs back to back; Reset restores registers and clears
// scratchpads between jobs.
//
// Each Sim owns its value array and its writable memory backing, so
// independent Sims over the same Module never share mutable state:
// Clone is cheap (the compiled Program and ROM contents are shared,
// both immutable) and clones may run concurrently, which is what the
// parallel job fan-out in package core relies on.
//
// Evaluation model per cycle:
//  1. combinational nodes are evaluated in ID order (SSA guarantees
//     arguments are ready; OpReg nodes read latched state),
//  2. memory write ports with En != 0 commit,
//  3. registers latch their Next values,
//  4. activity (toggle) counters are updated for the energy model.
type Sim struct {
	m *Module
	// prog is the compiled program; nil selects the interpreter.
	prog *Program
	// vals holds the current cycle's node values.
	vals []uint64
	// prev holds the previous cycle's values for toggle counting.
	prev []uint64
	// mems is the per-Sim memory backing, index-aligned with m.Mems.
	// ROM entries alias the module's (immutable) contents; RAM entries
	// are private to this Sim.
	mems [][]uint64
	// masks caches per-node width masks for the interpreter path.
	masks []uint64
	// constIdx/constVal preload literal values at Reset.
	constIdx []int32
	constVal []uint64
	// toggles accumulates per-node value-change counts across a Run; a
	// proxy for switching activity used by the energy model.
	toggles []uint64
	// countToggles enables activity tracking (small slowdown).
	countToggles bool
	// latch is scratch space for the simultaneous register update.
	latch []uint64
	// cycles counts the cycles executed since the last Reset.
	cycles uint64
	// ev holds the event engine's dynamic state; nil selects the
	// compiled loop (prog != nil) or the interpreter (prog == nil).
	ev *evState
	// nat is a pre-generated specialized step function (see native.go);
	// when set it overrides every other engine selection.
	nat NativeStep
}

// ErrNoProgress is returned by Run when the cycle limit is reached
// before the module raises Done.
var ErrNoProgress = errors.New("rtl: cycle limit reached before done")

// NewSim prepares a simulator for the module using the default engine
// (see SetDefaultEngine), compiling it first when the engine calls for
// it. The module must be valid (Builder.Build validates; hand-built
// modules should call Validate) and must not be mutated while the Sim
// is live.
func NewSim(m *Module) *Sim {
	return NewSimEngine(m, DefaultEngine())
}

// NewSimEngine prepares a simulator with an explicit engine choice.
// EngineBatch has no scalar Sim form (it simulates many jobs at once
// through BatchSim); callers that need a single-job simulator under the
// batch engine — retries, serving shards, VCD dumps — get the compiled
// engine, which the batch fan-out in package core uses as its per-job
// fallback as well. EngineNative requires a generated step registered
// for the module's fingerprint (see RegisterNative); without one the
// caller gets a compiled Sim and NativeFallbacks increments.
func NewSimEngine(m *Module, e Engine) *Sim {
	switch e {
	case EngineInterp:
		return NewInterpSim(m)
	case EngineEvent:
		return Compile(m).NewEventSim()
	case EngineNative:
		if step, ok := NativeStepFor(m); ok {
			return NewNativeSim(m, step)
		}
		nativeFallbacks.Add(1)
		return Compile(m).NewSim()
	default:
		return Compile(m).NewSim()
	}
}

// RegReader is the read-only view feature extraction needs from a
// simulation: the latched value of a register by Regs index. Both the
// scalar Sim and one lane of a BatchSim satisfy it.
type RegReader interface {
	RegValue(i int) uint64
}

// NewSim instantiates a simulator executing this compiled program.
// Many Sims may share one Program.
func (p *Program) NewSim() *Sim {
	s := newSimState(p.m)
	s.prog = p
	s.Reset()
	return s
}

// NewInterpSim prepares a simulator that interprets the Node table
// directly instead of compiling it. Semantics are bit-identical to the
// compiled engine; it exists for differential testing and as a
// fallback while debugging the compiler.
func NewInterpSim(m *Module) *Sim {
	s := newSimState(m)
	s.masks = make([]uint64, len(m.Nodes))
	for i := range m.Nodes {
		s.masks[i] = m.Nodes[i].Mask()
	}
	s.Reset()
	return s
}

// newSimState allocates the engine-independent simulation state.
func newSimState(m *Module) *Sim {
	s := &Sim{
		m:     m,
		vals:  make([]uint64, len(m.Nodes)),
		prev:  make([]uint64, len(m.Nodes)),
		latch: make([]uint64, len(m.Regs)),
		mems:  make([][]uint64, len(m.Mems)),
	}
	for i := range m.Nodes {
		if n := &m.Nodes[i]; n.Op == OpConst {
			s.constIdx = append(s.constIdx, int32(i))
			s.constVal = append(s.constVal, n.Const&n.Mask())
		}
	}
	for i, mem := range m.Mems {
		if mem.ROM {
			data := mem.Data
			if len(data) < mem.Words {
				padded := make([]uint64, mem.Words)
				copy(padded, data)
				data = padded
			}
			s.mems[i] = data
		} else {
			s.mems[i] = make([]uint64, mem.Words)
		}
	}
	return s
}

// Clone returns an independent simulator over the same module and
// engine, in freshly Reset state. The compiled program, netlist, and
// ROM contents are shared (all immutable); values, registers, and
// writable memories are private, so clones may run concurrently.
func (s *Sim) Clone() *Sim {
	c := newSimState(s.m)
	c.prog = s.prog
	c.masks = s.masks
	c.nat = s.nat
	if s.ev != nil {
		c.initEvent()
	}
	if s.countToggles {
		c.EnableActivity()
	}
	c.Reset()
	return c
}

// Engine reports which execution engine this simulator uses. A Sim
// built by NewSimEngine(m, EngineNative) reports EngineCompiled when it
// fell back, so silent fallback is detectable per simulator as well as
// through the NativeFallbacks counter.
func (s *Sim) Engine() Engine {
	switch {
	case s.nat != nil:
		return EngineNative
	case s.ev != nil:
		return EngineEvent
	case s.prog != nil:
		return EngineCompiled
	default:
		return EngineInterp
	}
}

// EnableActivity turns on per-node toggle counting for energy modeling.
func (s *Sim) EnableActivity() {
	s.countToggles = true
	if s.toggles == nil {
		s.toggles = make([]uint64, len(s.m.Nodes))
	}
	if s.ev != nil {
		// Changes before this call were not tracked incrementally; one
		// full sweep re-baselines, matching the interpreter.
		s.ev.fullScan = true
	}
}

// Toggles returns the per-node toggle counts accumulated since Reset.
// The slice is owned by the simulator; callers must not modify it.
func (s *Sim) Toggles() []uint64 { return s.toggles }

// Reset restores registers to their init values, zeroes non-ROM memory,
// clears inputs, the cycle counter, and activity counts.
func (s *Sim) Reset() {
	for i := range s.vals {
		s.vals[i] = 0
	}
	for k, idx := range s.constIdx {
		s.vals[idx] = s.constVal[k]
	}
	for i := range s.m.Regs {
		r := &s.m.Regs[i]
		s.vals[r.Node] = r.Init
	}
	for i, mem := range s.m.Mems {
		if mem.ROM {
			continue
		}
		data := s.mems[i]
		for j := range data {
			data[j] = 0
		}
	}
	for i := range s.toggles {
		s.toggles[i] = 0
	}
	s.cycles = 0
	copy(s.prev, s.vals)
	if s.ev != nil {
		s.evReset()
	}
}

// SetInput drives an input port for subsequent cycles. The value is
// written straight into the value array (no per-cycle lookup), so it
// is also visible to Value immediately.
func (s *Sim) SetInput(id NodeID, v uint64) {
	if s.m.Nodes[id].Op != OpInput {
		panic(fmt.Sprintf("rtl: SetInput on non-input node %d", id))
	}
	nv := v & s.m.Nodes[id].Mask()
	if s.ev != nil {
		if s.vals[id] != nv {
			s.vals[id] = nv
			s.evMark(int32(id))
			s.evSeedSlot(int32(id))
		}
		return
	}
	s.vals[id] = nv
}

// memIndex returns the index of the named memory, or -1.
func (s *Sim) memIndex(name string) int {
	for i, mem := range s.m.Mems {
		if mem.Name == name {
			return i
		}
	}
	return -1
}

// LoadMem fills a named scratchpad with job input data (the DMA transfer
// of the paper's system model). Excess words are zero.
func (s *Sim) LoadMem(name string, data []uint64) error {
	idx := s.memIndex(name)
	if idx < 0 {
		return fmt.Errorf("rtl: module %s has no memory %q", s.m.Name, name)
	}
	mem := s.m.Mems[idx]
	if mem.ROM {
		return fmt.Errorf("rtl: memory %q is a ROM", name)
	}
	if len(data) > mem.Words {
		return fmt.Errorf("rtl: %d words exceed memory %q size %d", len(data), name, mem.Words)
	}
	dst := s.mems[idx]
	copy(dst, data)
	for i := len(data); i < mem.Words; i++ {
		dst[i] = 0
	}
	if s.ev != nil {
		s.evSeedMem(int32(idx))
	}
	return nil
}

// Mem returns the named memory's current contents (aliased, not
// copied). The contents are private to this Sim except for ROMs.
func (s *Sim) Mem(name string) []uint64 {
	idx := s.memIndex(name)
	if idx < 0 {
		return nil
	}
	return s.mems[idx]
}

// Value returns the value computed for a node in the last executed
// cycle (for OpReg nodes, the current latched state).
func (s *Sim) Value(id NodeID) uint64 { return s.vals[id] }

// Cycles returns the number of cycles executed since Reset.
func (s *Sim) Cycles() uint64 { return s.cycles }

// Step executes one cycle and reports whether Done was high.
func (s *Sim) Step() bool {
	if s.nat != nil {
		done := s.nat(s.vals, s.mems)
		if s.countToggles {
			s.countActivity()
		}
		s.cycles++
		return done
	}
	if s.ev != nil {
		return s.stepEvent()
	}
	if s.prog != nil {
		return s.stepCompiled()
	}
	return s.stepInterp()
}

// InstrEvals returns the number of combinational evaluations performed
// since Reset. For the compiled engine and the interpreter every
// instruction (or combinational node) runs every cycle; the event
// engine reports the work it actually did, so the ratio between the
// two quantifies wait-state elision.
func (s *Sim) InstrEvals() uint64 {
	if s.ev != nil {
		return s.ev.evals
	}
	if s.prog != nil {
		return s.cycles * uint64(len(s.prog.code))
	}
	comb := 0
	for i := range s.m.Nodes {
		switch s.m.Nodes[i].Op {
		case OpConst, OpInput, OpReg:
		default:
			comb++
		}
	}
	return s.cycles * uint64(comb)
}

// stepInterp is the reference interpreter. Constants are preloaded and
// inputs written directly by SetInput, so both are skipped here; width
// masks come from the precomputed table instead of per-node
// recomputation.
func (s *Sim) stepInterp() bool {
	m := s.m
	vals := s.vals
	masks := s.masks
	// Phase 1: combinational evaluation in SSA order.
	for i := range m.Nodes {
		n := &m.Nodes[i]
		switch n.Op {
		case OpConst, OpReg, OpInput:
			// Constants preloaded; registers hold latched state; inputs
			// are written by SetInput.
			continue
		case OpMemRead:
			data := s.mems[n.Mem]
			if addr := vals[n.Args[0]]; addr < uint64(len(data)) {
				vals[i] = data[addr] & masks[i]
			} else {
				vals[i] = 0
			}
		case OpMux:
			if vals[n.Args[0]] != 0 {
				vals[i] = vals[n.Args[1]] & masks[i]
			} else {
				vals[i] = vals[n.Args[2]] & masks[i]
			}
		case OpAdd:
			vals[i] = (vals[n.Args[0]] + vals[n.Args[1]]) & masks[i]
		case OpSub:
			vals[i] = (vals[n.Args[0]] - vals[n.Args[1]]) & masks[i]
		case OpMul:
			vals[i] = (vals[n.Args[0]] * vals[n.Args[1]]) & masks[i]
		case OpAnd:
			vals[i] = vals[n.Args[0]] & vals[n.Args[1]] & masks[i]
		case OpOr:
			vals[i] = (vals[n.Args[0]] | vals[n.Args[1]]) & masks[i]
		case OpXor:
			vals[i] = (vals[n.Args[0]] ^ vals[n.Args[1]]) & masks[i]
		case OpNot:
			vals[i] = ^vals[n.Args[0]] & masks[i]
		case OpShl:
			if sh := vals[n.Args[1]]; sh < 64 {
				vals[i] = (vals[n.Args[0]] << sh) & masks[i]
			} else {
				vals[i] = 0
			}
		case OpShr:
			if sh := vals[n.Args[1]]; sh < 64 {
				vals[i] = (vals[n.Args[0]] >> sh) & masks[i]
			} else {
				vals[i] = 0
			}
		case OpEq:
			if vals[n.Args[0]] == vals[n.Args[1]] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		case OpNe:
			if vals[n.Args[0]] != vals[n.Args[1]] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		case OpLt:
			if vals[n.Args[0]] < vals[n.Args[1]] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		case OpLe:
			if vals[n.Args[0]] <= vals[n.Args[1]] {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		}
	}
	done := vals[m.Done] != 0
	// Phase 2: memory writes commit.
	for i := range m.Writes {
		w := &m.Writes[i]
		if vals[w.En] != 0 {
			data := s.mems[w.Mem]
			if addr := vals[w.Addr]; addr < uint64(len(data)) {
				data[addr] = vals[w.Data]
			}
		}
	}
	// Phase 3: registers latch simultaneously. Next values are read into
	// a scratch slice first so a register whose Next aliases another
	// register's node observes the pre-latch value.
	latch := s.latch
	for i := range m.Regs {
		r := &m.Regs[i]
		latch[i] = vals[r.Next] & masks[r.Node]
	}
	for i := range m.Regs {
		vals[m.Regs[i].Node] = latch[i]
	}
	// Phase 4: activity accounting.
	if s.countToggles {
		s.countActivity()
	}
	s.cycles++
	return done
}

// countActivity updates toggle counters after a cycle's latch phase.
func (s *Sim) countActivity() {
	vals := s.vals
	prev := s.prev
	tg := s.toggles
	for i := range vals {
		if vals[i] != prev[i] {
			tg[i]++
			prev[i] = vals[i]
		}
	}
}

// Run steps the module until Done is raised, returning the number of
// cycles taken (inclusive of the done cycle). If maxCycles elapses
// first, it returns ErrNoProgress.
func (s *Sim) Run(maxCycles uint64) (uint64, error) {
	start := s.cycles
	for s.cycles-start < maxCycles {
		if s.Step() {
			return s.cycles - start, nil
		}
	}
	return s.cycles - start, fmt.Errorf("%w (module %s, limit %d)", ErrNoProgress, s.m.Name, maxCycles)
}

// RegValue returns the latched value of register index i.
func (s *Sim) RegValue(i int) uint64 { return s.vals[s.m.Regs[i].Node] }
