package rtl_test

import (
	"math/rand"
	"testing"

	"repro/internal/rtl"
	"repro/internal/rtl/codegen"
	"repro/internal/testdesigns"
)

// randModule hand-assembles a random but valid netlist exercising every
// op, both memory kinds, write ports, and the exact two-node shapes the
// compiler fuses (compare-with-const feeding a mux, add/sub feeding an
// AND mask). Nodes are built directly rather than through the Builder
// so hash-consing cannot collapse the patterns under test.
func randModule(rng *rand.Rand) *rtl.Module {
	m := &rtl.Module{Name: "rand"}
	add := func(n rtl.Node) rtl.NodeID {
		n.NArgs = uint8(n.Op.NumArgs())
		m.Nodes = append(m.Nodes, n)
		return rtl.NodeID(len(m.Nodes) - 1)
	}
	randWidth := func() uint8 { return uint8(1 + rng.Intn(64)) }
	addConst := func() rtl.NodeID {
		w := randWidth()
		return add(rtl.Node{Op: rtl.OpConst, Width: w, Const: rng.Uint64() & rtl.WidthMask(w)})
	}
	pick := func() rtl.NodeID { return rtl.NodeID(rng.Intn(len(m.Nodes))) }

	for i := 0; i < 4+rng.Intn(4); i++ {
		addConst()
	}
	var inputs []rtl.NodeID
	for i := 0; i < 1+rng.Intn(3); i++ {
		inputs = append(inputs, add(rtl.Node{Op: rtl.OpInput, Width: randWidth()}))
	}

	m.Mems = append(m.Mems, &rtl.Mem{Name: "in", Words: 16 + rng.Intn(17)})
	rom := make([]uint64, 8)
	for i := range rom {
		rom[i] = rng.Uint64()
	}
	m.Mems = append(m.Mems, &rtl.Mem{Name: "rom", Words: len(rom), Data: rom, ROM: true})

	for i := 0; i < 2+rng.Intn(4); i++ {
		w := randWidth()
		id := add(rtl.Node{Op: rtl.OpReg, Width: w})
		m.Regs = append(m.Regs, rtl.Reg{Node: id, Next: id, Init: rng.Uint64() & rtl.WidthMask(w)})
	}

	ops := []rtl.Op{
		rtl.OpAdd, rtl.OpSub, rtl.OpMul, rtl.OpAnd, rtl.OpOr, rtl.OpXor,
		rtl.OpNot, rtl.OpShl, rtl.OpShr, rtl.OpEq, rtl.OpNe, rtl.OpLt,
		rtl.OpLe, rtl.OpMux, rtl.OpMemRead,
	}
	for i := 0; i < 150; i++ {
		op := ops[rng.Intn(len(ops))]
		n := rtl.Node{Op: op, Width: randWidth()}
		for a := 0; a < op.NumArgs(); a++ {
			n.Args[a] = pick()
		}
		if op == rtl.OpMemRead {
			n.Mem = int32(rng.Intn(len(m.Mems)))
		}
		// Put a constant on a random side sometimes so the immediate
		// specializations get exercised on both operand orders.
		if op.NumArgs() == 2 && rng.Intn(3) == 0 {
			n.Args[rng.Intn(2)] = addConst()
		}
		add(n)

		switch rng.Intn(6) {
		case 0: // compare-with-const feeding a mux select
			cmp := rtl.OpEq
			if rng.Intn(2) == 0 {
				cmp = rtl.OpNe
			}
			e := add(rtl.Node{Op: cmp, Width: 1, Args: [3]rtl.NodeID{pick(), addConst()}})
			add(rtl.Node{Op: rtl.OpMux, Width: randWidth(), Args: [3]rtl.NodeID{e, pick(), pick()}})
		case 1: // add/sub feeding an AND-with-const mask
			ar := rtl.OpAdd
			if rng.Intn(2) == 0 {
				ar = rtl.OpSub
			}
			x := add(rtl.Node{Op: ar, Width: randWidth(), Args: [3]rtl.NodeID{pick(), pick()}})
			add(rtl.Node{Op: rtl.OpAnd, Width: randWidth(), Args: [3]rtl.NodeID{x, addConst()}})
		}
	}

	for i := range m.Regs {
		m.Regs[i].Next = pick()
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		m.Writes = append(m.Writes, rtl.MemWrite{Mem: 0, Addr: pick(), Data: pick(), En: pick()})
	}
	m.Done = pick()
	_ = inputs
	return m
}

// inputsOf lists the module's OpInput nodes.
func inputsOf(m *rtl.Module) []rtl.NodeID {
	var ids []rtl.NodeID
	for i := range m.Nodes {
		if m.Nodes[i].Op == rtl.OpInput {
			ids = append(ids, rtl.NodeID(i))
		}
	}
	return ids
}

// engineSim pairs a Sim with its engine name for error messages.
type engineSim struct {
	name string
	s    *rtl.Sim
}

// engineSims instantiates the scalar engines over one module, with the
// interpreter first — it is the reference the others are compared to.
// The compiled and event Sims share one Program, exactly like the
// production fan-out does. The native leg runs a freshly built codegen
// plan (the same specialized instruction lists cmd/rtlgen emits as Go
// source), so the partial evaluator and FSM-state dispatch face every
// random netlist here and in FuzzEngineDifferential.
func engineSims(m *rtl.Module) []engineSim {
	p := rtl.Compile(m)
	return []engineSim{
		{"interp", rtl.NewInterpSim(m)},
		{"compiled", p.NewSim()},
		{"event", p.NewEventSim()},
		{"native", rtl.NewNativeSim(m, codegen.Build(m).Step)},
	}
}

// diffCompare fails on the first per-node or cycle-count divergence of
// any engine from the reference (sims[0]).
func diffCompare(t *testing.T, m *rtl.Module, sims []engineSim, cycle int) {
	t.Helper()
	ref := sims[0]
	for _, e := range sims[1:] {
		if e.s.Cycles() != ref.s.Cycles() {
			t.Fatalf("cycle %d: Cycles %d (%s) != %d (%s)", cycle, e.s.Cycles(), e.name, ref.s.Cycles(), ref.name)
		}
		for id := 0; id < m.NumNodes(); id++ {
			if ev, rv := e.s.Value(rtl.NodeID(id)), ref.s.Value(rtl.NodeID(id)); ev != rv {
				t.Fatalf("cycle %d: node %d (%s): %s %#x != %s %#x",
					cycle, id, m.Nodes[id].Op, e.name, ev, ref.name, rv)
			}
		}
	}
}

// diffFinish checks the end-of-run observables: toggle counters and
// memory contents.
func diffFinish(t *testing.T, m *rtl.Module, sims []engineSim) {
	t.Helper()
	ref := sims[0]
	for _, e := range sims[1:] {
		et, rt := e.s.Toggles(), ref.s.Toggles()
		for i := range et {
			if et[i] != rt[i] {
				t.Fatalf("node %d (%s): toggles %d (%s) != %d (%s)",
					i, m.Nodes[i].Op, et[i], e.name, rt[i], ref.name)
			}
		}
		for _, mem := range m.Mems {
			em, rm := e.s.Mem(mem.Name), ref.s.Mem(mem.Name)
			for a := range em {
				if em[a] != rm[a] {
					t.Fatalf("mem %s[%d]: %s %#x != %s %#x", mem.Name, a, e.name, em[a], ref.name, rm[a])
				}
			}
		}
	}
}

// TestEnginesMatchOnRandomNetlists is the differential property test:
// on random netlists, the compiled and event engines must be
// cycle-exact with the interpreter — node values, Cycles, Toggles, and
// memory contents.
func TestEnginesMatchOnRandomNetlists(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	for trial := 0; trial < 40; trial++ {
		m := randModule(rng)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random module: %v", trial, err)
		}
		sims := engineSims(m)
		load := make([]uint64, m.Mems[0].Words)
		for i := range load {
			load[i] = rng.Uint64()
		}
		for _, e := range sims {
			e.s.EnableActivity()
			if err := e.s.LoadMem("in", load); err != nil {
				t.Fatal(err)
			}
		}
		ins := inputsOf(m)
		for cycle := 0; cycle < 80; cycle++ {
			for _, id := range ins {
				v := rng.Uint64()
				for _, e := range sims {
					e.s.SetInput(id, v)
				}
			}
			rd := sims[0].s.Step()
			for _, e := range sims[1:] {
				if ed := e.s.Step(); ed != rd {
					t.Fatalf("trial %d cycle %d: done %v (%s) != %v (interp)", trial, cycle, ed, e.name, rd)
				}
			}
			diffCompare(t, m, sims, cycle)
		}
		diffFinish(t, m, sims)
	}
}

// TestEnginesMatchOnToy runs the documented Toy design on all three
// engines across a spread of jobs and checks full-state agreement,
// including the hand-computed cycle formula.
func TestEnginesMatchOnToy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	toy := testdesigns.Toy()
	sims := engineSims(toy.M)
	for _, e := range sims {
		e.s.EnableActivity()
	}
	for trial := 0; trial < 10; trial++ {
		items := make([]uint64, 1+rng.Intn(40))
		for i := range items {
			items[i] = testdesigns.ToyItem(rng.Intn(2) == 0, uint8(rng.Intn(200)))
		}
		job := testdesigns.ToyJob(items)
		want := testdesigns.ToyCycles(items)
		for _, e := range sims {
			e.s.Reset()
			if err := e.s.LoadMem("in", job); err != nil {
				t.Fatal(err)
			}
			c, err := e.s.Run(1 << 20)
			if err != nil {
				t.Fatalf("trial %d: %s run error: %v", trial, e.name, err)
			}
			if c != want {
				t.Fatalf("trial %d: cycles %s=%d want=%d", trial, e.name, c, want)
			}
		}
		diffCompare(t, toy.M, sims, int(want))
		diffFinish(t, toy.M, sims)
	}
}

// TestEnginesMatchOnHandFSM covers the input-driven path: the
// hand-lowered FSM is stepped with random stimulus on all engines.
func TestEnginesMatchOnHandFSM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, _ := testdesigns.HandFSM()
	sims := engineSims(m)
	for _, e := range sims {
		e.s.EnableActivity()
	}
	ins := inputsOf(m)
	for cycle := 0; cycle < 200; cycle++ {
		for _, id := range ins {
			v := rng.Uint64()
			for _, e := range sims {
				e.s.SetInput(id, v)
			}
		}
		for _, e := range sims {
			e.s.Step()
		}
		diffCompare(t, m, sims, cycle)
	}
	diffFinish(t, m, sims)
}

// TestCloneIsIndependent checks that a clone starts fresh, matches its
// parent's behaviour, and that parent and clone do not share writable
// memory — for every engine (the parallel job fan-out clones whatever
// engine the caller picked).
func TestCloneIsIndependent(t *testing.T) {
	toy := testdesigns.Toy()
	items := []uint64{testdesigns.ToyItem(false, 0), testdesigns.ToyItem(true, 9)}
	job := testdesigns.ToyJob(items)

	for _, mk := range []struct {
		name string
		mk   func(*rtl.Module) *rtl.Sim
	}{
		{"compiled", rtl.NewSim},
		{"interp", rtl.NewInterpSim},
		{"event", rtl.NewEventSim},
	} {
		t.Run(mk.name, func(t *testing.T) {
			s := mk.mk(toy.M)
			s.EnableActivity()
			c := s.Clone()
			if c.Toggles() == nil {
				t.Fatal("clone did not inherit activity tracking")
			}
			if c.Engine() != s.Engine() {
				t.Fatalf("clone engine %s != parent %s", c.Engine(), s.Engine())
			}
			if err := s.LoadMem("in", job); err != nil {
				t.Fatal(err)
			}
			if got := c.Mem("in")[0]; got != 0 {
				t.Fatalf("clone saw parent's LoadMem: in[0]=%d", got)
			}
			if err := c.LoadMem("in", job); err != nil {
				t.Fatal(err)
			}
			sc, err1 := s.Run(1 << 20)
			cc, err2 := c.Run(1 << 20)
			if err1 != nil || err2 != nil {
				t.Fatalf("run errors %v / %v", err1, err2)
			}
			if sc != cc || sc != testdesigns.ToyCycles(items) {
				t.Fatalf("cycles parent=%d clone=%d want=%d", sc, cc, testdesigns.ToyCycles(items))
			}
		})
	}
}

// TestCompileFusesToy sanity-checks that compilation actually shrinks
// the dispatch stream: constants, inputs and registers take no slots,
// and at least one super-op fusion fires on the Toy control logic.
func TestCompileFusesToy(t *testing.T) {
	toy := testdesigns.Toy()
	comb := 0
	for i := range toy.M.Nodes {
		switch toy.M.Nodes[i].Op {
		case rtl.OpConst, rtl.OpInput, rtl.OpReg:
		default:
			comb++
		}
	}
	p := rtl.Compile(toy.M)
	if got := p.Instructions(); got >= comb {
		t.Fatalf("compiled %d instructions, want fewer than %d combinational nodes (fusion)", got, comb)
	}
}
