package rtl_test

import (
	"math/rand"
	"testing"

	"repro/internal/rtl"
	"repro/internal/testdesigns"
)

// randModule hand-assembles a random but valid netlist exercising every
// op, both memory kinds, write ports, and the exact two-node shapes the
// compiler fuses (compare-with-const feeding a mux, add/sub feeding an
// AND mask). Nodes are built directly rather than through the Builder
// so hash-consing cannot collapse the patterns under test.
func randModule(rng *rand.Rand) *rtl.Module {
	m := &rtl.Module{Name: "rand"}
	add := func(n rtl.Node) rtl.NodeID {
		n.NArgs = uint8(n.Op.NumArgs())
		m.Nodes = append(m.Nodes, n)
		return rtl.NodeID(len(m.Nodes) - 1)
	}
	randWidth := func() uint8 { return uint8(1 + rng.Intn(64)) }
	addConst := func() rtl.NodeID {
		w := randWidth()
		return add(rtl.Node{Op: rtl.OpConst, Width: w, Const: rng.Uint64() & rtl.WidthMask(w)})
	}
	pick := func() rtl.NodeID { return rtl.NodeID(rng.Intn(len(m.Nodes))) }

	for i := 0; i < 4+rng.Intn(4); i++ {
		addConst()
	}
	var inputs []rtl.NodeID
	for i := 0; i < 1+rng.Intn(3); i++ {
		inputs = append(inputs, add(rtl.Node{Op: rtl.OpInput, Width: randWidth()}))
	}

	m.Mems = append(m.Mems, &rtl.Mem{Name: "in", Words: 16 + rng.Intn(17)})
	rom := make([]uint64, 8)
	for i := range rom {
		rom[i] = rng.Uint64()
	}
	m.Mems = append(m.Mems, &rtl.Mem{Name: "rom", Words: len(rom), Data: rom, ROM: true})

	for i := 0; i < 2+rng.Intn(4); i++ {
		w := randWidth()
		id := add(rtl.Node{Op: rtl.OpReg, Width: w})
		m.Regs = append(m.Regs, rtl.Reg{Node: id, Next: id, Init: rng.Uint64() & rtl.WidthMask(w)})
	}

	ops := []rtl.Op{
		rtl.OpAdd, rtl.OpSub, rtl.OpMul, rtl.OpAnd, rtl.OpOr, rtl.OpXor,
		rtl.OpNot, rtl.OpShl, rtl.OpShr, rtl.OpEq, rtl.OpNe, rtl.OpLt,
		rtl.OpLe, rtl.OpMux, rtl.OpMemRead,
	}
	for i := 0; i < 150; i++ {
		op := ops[rng.Intn(len(ops))]
		n := rtl.Node{Op: op, Width: randWidth()}
		for a := 0; a < op.NumArgs(); a++ {
			n.Args[a] = pick()
		}
		if op == rtl.OpMemRead {
			n.Mem = int32(rng.Intn(len(m.Mems)))
		}
		// Put a constant on a random side sometimes so the immediate
		// specializations get exercised on both operand orders.
		if op.NumArgs() == 2 && rng.Intn(3) == 0 {
			n.Args[rng.Intn(2)] = addConst()
		}
		add(n)

		switch rng.Intn(6) {
		case 0: // compare-with-const feeding a mux select
			cmp := rtl.OpEq
			if rng.Intn(2) == 0 {
				cmp = rtl.OpNe
			}
			e := add(rtl.Node{Op: cmp, Width: 1, Args: [3]rtl.NodeID{pick(), addConst()}})
			add(rtl.Node{Op: rtl.OpMux, Width: randWidth(), Args: [3]rtl.NodeID{e, pick(), pick()}})
		case 1: // add/sub feeding an AND-with-const mask
			ar := rtl.OpAdd
			if rng.Intn(2) == 0 {
				ar = rtl.OpSub
			}
			x := add(rtl.Node{Op: ar, Width: randWidth(), Args: [3]rtl.NodeID{pick(), pick()}})
			add(rtl.Node{Op: rtl.OpAnd, Width: randWidth(), Args: [3]rtl.NodeID{x, addConst()}})
		}
	}

	for i := range m.Regs {
		m.Regs[i].Next = pick()
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		m.Writes = append(m.Writes, rtl.MemWrite{Mem: 0, Addr: pick(), Data: pick(), En: pick()})
	}
	m.Done = pick()
	_ = inputs
	return m
}

// inputsOf lists the module's OpInput nodes.
func inputsOf(m *rtl.Module) []rtl.NodeID {
	var ids []rtl.NodeID
	for i := range m.Nodes {
		if m.Nodes[i].Op == rtl.OpInput {
			ids = append(ids, rtl.NodeID(i))
		}
	}
	return ids
}

// diffStep drives both engines one cycle with identical stimulus and
// fails on the first observable divergence.
func diffCompare(t *testing.T, m *rtl.Module, cs, is *rtl.Sim, cycle int) {
	t.Helper()
	if cs.Cycles() != is.Cycles() {
		t.Fatalf("cycle %d: Cycles %d (compiled) != %d (interp)", cycle, cs.Cycles(), is.Cycles())
	}
	for id := 0; id < m.NumNodes(); id++ {
		if cv, iv := cs.Value(rtl.NodeID(id)), is.Value(rtl.NodeID(id)); cv != iv {
			t.Fatalf("cycle %d: node %d (%s): compiled %#x != interp %#x",
				cycle, id, m.Nodes[id].Op, cv, iv)
		}
	}
}

func diffFinish(t *testing.T, m *rtl.Module, cs, is *rtl.Sim) {
	t.Helper()
	ct, it := cs.Toggles(), is.Toggles()
	for i := range ct {
		if ct[i] != it[i] {
			t.Fatalf("node %d (%s): toggles %d (compiled) != %d (interp)", i, m.Nodes[i].Op, ct[i], it[i])
		}
	}
	for _, mem := range m.Mems {
		cm, im := cs.Mem(mem.Name), is.Mem(mem.Name)
		for a := range cm {
			if cm[a] != im[a] {
				t.Fatalf("mem %s[%d]: compiled %#x != interp %#x", mem.Name, a, cm[a], im[a])
			}
		}
	}
}

// TestCompiledMatchesInterpreterOnRandomNetlists is the differential
// property test: on random netlists, the compiled engine must be
// cycle-exact with the interpreter — node values, Cycles, Toggles, and
// memory contents.
func TestCompiledMatchesInterpreterOnRandomNetlists(t *testing.T) {
	rng := rand.New(rand.NewSource(1729))
	for trial := 0; trial < 40; trial++ {
		m := randModule(rng)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random module: %v", trial, err)
		}
		cs, is := rtl.NewSim(m), rtl.NewInterpSim(m)
		cs.EnableActivity()
		is.EnableActivity()
		load := make([]uint64, m.Mems[0].Words)
		for i := range load {
			load[i] = rng.Uint64()
		}
		if err := cs.LoadMem("in", load); err != nil {
			t.Fatal(err)
		}
		if err := is.LoadMem("in", load); err != nil {
			t.Fatal(err)
		}
		ins := inputsOf(m)
		for cycle := 0; cycle < 80; cycle++ {
			for _, id := range ins {
				v := rng.Uint64()
				cs.SetInput(id, v)
				is.SetInput(id, v)
			}
			cd, id := cs.Step(), is.Step()
			if cd != id {
				t.Fatalf("trial %d cycle %d: done %v (compiled) != %v (interp)", trial, cycle, cd, id)
			}
			diffCompare(t, m, cs, is, cycle)
		}
		diffFinish(t, m, cs, is)
	}
}

// TestCompiledMatchesInterpreterOnToy runs the documented Toy design on
// both engines across a spread of jobs and checks full-state agreement,
// including the hand-computed cycle formula.
func TestCompiledMatchesInterpreterOnToy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	toy := testdesigns.Toy()
	cs, is := rtl.NewSim(toy.M), rtl.NewInterpSim(toy.M)
	cs.EnableActivity()
	is.EnableActivity()
	for trial := 0; trial < 10; trial++ {
		items := make([]uint64, 1+rng.Intn(40))
		for i := range items {
			items[i] = testdesigns.ToyItem(rng.Intn(2) == 0, uint8(rng.Intn(200)))
		}
		job := testdesigns.ToyJob(items)
		cs.Reset()
		is.Reset()
		if err := cs.LoadMem("in", job); err != nil {
			t.Fatal(err)
		}
		if err := is.LoadMem("in", job); err != nil {
			t.Fatal(err)
		}
		cc, cerr := cs.Run(1 << 20)
		ic, ierr := is.Run(1 << 20)
		if cerr != nil || ierr != nil {
			t.Fatalf("trial %d: run errors %v / %v", trial, cerr, ierr)
		}
		if want := testdesigns.ToyCycles(items); cc != want || ic != want {
			t.Fatalf("trial %d: cycles compiled=%d interp=%d want=%d", trial, cc, ic, want)
		}
		diffCompare(t, toy.M, cs, is, int(cc))
		diffFinish(t, toy.M, cs, is)
	}
}

// TestCompiledMatchesInterpreterOnHandFSM covers the input-driven path:
// the hand-lowered FSM is stepped with random stimulus on both engines.
func TestCompiledMatchesInterpreterOnHandFSM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, _ := testdesigns.HandFSM()
	cs, is := rtl.NewSim(m), rtl.NewInterpSim(m)
	cs.EnableActivity()
	is.EnableActivity()
	ins := inputsOf(m)
	for cycle := 0; cycle < 200; cycle++ {
		for _, id := range ins {
			v := rng.Uint64()
			cs.SetInput(id, v)
			is.SetInput(id, v)
		}
		cs.Step()
		is.Step()
		diffCompare(t, m, cs, is, cycle)
	}
	diffFinish(t, m, cs, is)
}

// TestCloneIsIndependent checks that a clone starts fresh, matches its
// parent's behaviour, and that parent and clone do not share writable
// memory.
func TestCloneIsIndependent(t *testing.T) {
	toy := testdesigns.Toy()
	items := []uint64{testdesigns.ToyItem(false, 0), testdesigns.ToyItem(true, 9)}
	job := testdesigns.ToyJob(items)

	s := rtl.NewSim(toy.M)
	s.EnableActivity()
	c := s.Clone()
	if c.Toggles() == nil {
		t.Fatal("clone did not inherit activity tracking")
	}
	if err := s.LoadMem("in", job); err != nil {
		t.Fatal(err)
	}
	if got := c.Mem("in")[0]; got != 0 {
		t.Fatalf("clone saw parent's LoadMem: in[0]=%d", got)
	}
	if err := c.LoadMem("in", job); err != nil {
		t.Fatal(err)
	}
	sc, err1 := s.Run(1 << 20)
	cc, err2 := c.Run(1 << 20)
	if err1 != nil || err2 != nil {
		t.Fatalf("run errors %v / %v", err1, err2)
	}
	if sc != cc || sc != testdesigns.ToyCycles(items) {
		t.Fatalf("cycles parent=%d clone=%d want=%d", sc, cc, testdesigns.ToyCycles(items))
	}
}

// TestCompileFusesToy sanity-checks that compilation actually shrinks
// the dispatch stream: constants, inputs and registers take no slots,
// and at least one super-op fusion fires on the Toy control logic.
func TestCompileFusesToy(t *testing.T) {
	toy := testdesigns.Toy()
	comb := 0
	for i := range toy.M.Nodes {
		switch toy.M.Nodes[i].Op {
		case rtl.OpConst, rtl.OpInput, rtl.OpReg:
		default:
			comb++
		}
	}
	p := rtl.Compile(toy.M)
	if got := p.Instructions(); got >= comb {
		t.Fatalf("compiled %d instructions, want fewer than %d combinational nodes (fusion)", got, comb)
	}
}
