package rtl_test

import (
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/accel/stencil"
	"repro/internal/rtl"
	"repro/internal/testdesigns"
)

// TestEventElidesQuiescentWork proves the engine actually skips work:
// on the Toy design — whose jobs are dominated by wait-state self-loops
// — the event engine must perform well under half the combinational
// evaluations a full sweep would.
func TestEventElidesQuiescentWork(t *testing.T) {
	toy := testdesigns.Toy()
	items := make([]uint64, 50)
	for i := range items {
		items[i] = testdesigns.ToyItem(i%2 == 0, 100) // long waits
	}
	job := testdesigns.ToyJob(items)
	p := rtl.Compile(toy.M)
	es := p.NewEventSim()
	if err := es.LoadMem("in", job); err != nil {
		t.Fatal(err)
	}
	cycles, err := es.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	full := cycles * uint64(p.Instructions())
	got := es.InstrEvals()
	if got == 0 || got >= full/2 {
		t.Fatalf("event engine evaluated %d of %d instruction slots (%.1f%%); want well under 50%%",
			got, full, 100*float64(got)/float64(full))
	}
	t.Logf("event engine: %d/%d evals (%.1f%%) over %d cycles",
		got, full, 100*float64(got)/float64(full), cycles)
}

// TestEventActivityEnabledMidRun checks the EnableActivity-after-Step
// corner: the event engine's incremental toggle accounting must match
// the interpreter's full-sweep semantics even when counting starts
// against a stale baseline.
func TestEventActivityEnabledMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m, _ := testdesigns.HandFSM()
	es, is := rtl.NewEventSim(m), rtl.NewInterpSim(m)
	ins := inputsOf(m)
	step := func() {
		for _, id := range ins {
			v := rng.Uint64()
			es.SetInput(id, v)
			is.SetInput(id, v)
		}
		es.Step()
		is.Step()
	}
	for cycle := 0; cycle < 25; cycle++ {
		step()
	}
	es.EnableActivity()
	is.EnableActivity()
	for cycle := 0; cycle < 50; cycle++ {
		step()
	}
	et, it := es.Toggles(), is.Toggles()
	for i := range et {
		if et[i] != it[i] {
			t.Fatalf("node %d: toggles %d (event) != %d (interp)", i, et[i], it[i])
		}
	}
}

// TestEventVCD checks the waveform path: RunWithVCD observes identical
// values through Value() on the event engine and the interpreter.
func TestEventMatchesOnRealAccelerator(t *testing.T) {
	spec := stencil.Spec()
	m := spec.Build()
	es, is := rtl.NewEventSim(m), rtl.NewInterpSim(m)
	es.EnableActivity()
	is.EnableActivity()
	job := spec.TestJobs(5)[0]
	et, err := accel.RunJob(es, job, spec.MaxTicks)
	if err != nil {
		t.Fatal(err)
	}
	it, err := accel.RunJob(is, job, spec.MaxTicks)
	if err != nil {
		t.Fatal(err)
	}
	if et != it {
		t.Fatalf("ticks %d (event) != %d (interp)", et, it)
	}
	for id := 0; id < m.NumNodes(); id++ {
		if ev, iv := es.Value(rtl.NodeID(id)), is.Value(rtl.NodeID(id)); ev != iv {
			t.Fatalf("node %d: %#x (event) != %#x (interp)", id, ev, iv)
		}
	}
	eg, ig := es.Toggles(), is.Toggles()
	for i := range eg {
		if eg[i] != ig[i] {
			t.Fatalf("node %d: toggles %d (event) != %d (interp)", i, eg[i], ig[i])
		}
	}
}

// TestEngineSelection covers ParseEngine and the NewSimEngine /
// SetDefaultEngine plumbing the CLI -engine flags rely on.
func TestEngineSelection(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want rtl.Engine
		ok   bool
	}{
		{"", rtl.EngineCompiled, true},
		{"compiled", rtl.EngineCompiled, true},
		{"event", rtl.EngineEvent, true},
		{"interp", rtl.EngineInterp, true},
		// Bad names: unknown engines, wrong case, stray whitespace — the
		// flag value is taken verbatim, never normalized.
		{"verilator", "", false},
		{"COMPILED", "", false},
		{"Interp", "", false},
		{" compiled", "", false},
		{"compiled ", "", false},
		{"event,interp", "", false},
		{"gate-level", "", false},
	} {
		got, err := rtl.ParseEngine(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("ParseEngine(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}

	toy := testdesigns.Toy()
	for _, e := range []rtl.Engine{rtl.EngineCompiled, rtl.EngineEvent, rtl.EngineInterp} {
		if got := rtl.NewSimEngine(toy.M, e).Engine(); got != e {
			t.Fatalf("NewSimEngine(%s).Engine() = %s", e, got)
		}
	}

	prev := rtl.DefaultEngine()
	defer func() {
		if err := rtl.SetDefaultEngine(prev); err != nil {
			t.Fatal(err)
		}
	}()
	if err := rtl.SetDefaultEngine(rtl.EngineEvent); err != nil {
		t.Fatal(err)
	}
	if got := rtl.NewSim(toy.M).Engine(); got != rtl.EngineEvent {
		t.Fatalf("NewSim under event default: engine %s", got)
	}
	if err := rtl.SetDefaultEngine("gatesim"); err == nil {
		t.Fatal("SetDefaultEngine accepted an unknown engine")
	}
}

// TestFingerprint checks the netlist content hash: stable across
// rebuilds, insensitive to debug names, sensitive to semantic edits.
func TestFingerprint(t *testing.T) {
	spec := stencil.Spec()
	a, b := spec.Build(), spec.Build()
	fa, fb := rtl.Fingerprint(a), rtl.Fingerprint(b)
	if fa != fb {
		t.Fatalf("fingerprint not reproducible across builds:\n%s\n%s", fa, fb)
	}
	if len(fa) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(fa))
	}

	// Debug names must not affect the hash.
	b.Nodes[0].Name = "renamed"
	if rtl.Fingerprint(b) != fa {
		t.Fatal("fingerprint depends on a debug name")
	}

	// Semantic edits must.
	toy := testdesigns.Toy()
	base := rtl.Fingerprint(toy.M)
	mut := testdesigns.Toy()
	for i := range mut.M.Nodes {
		if mut.M.Nodes[i].Op == rtl.OpConst {
			mut.M.Nodes[i].Const ^= 1
			break
		}
	}
	if rtl.Fingerprint(mut.M) == base {
		t.Fatal("fingerprint insensitive to a constant change")
	}
	mut2 := testdesigns.Toy()
	if len(mut2.M.Regs) > 0 {
		mut2.M.Regs[0].Init ^= 1
		if rtl.Fingerprint(mut2.M) == base {
			t.Fatal("fingerprint insensitive to a register init change")
		}
	}
}
