package rtl

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// fingerprintVersion bumps when the encoding below changes, so stale
// cache entries keyed on an old encoding can never alias a new one.
const fingerprintVersion = 1

// Fingerprint returns a stable, content-addressed hash of the netlist:
// operations, widths, wiring, constants, register bindings and inits,
// memory shapes and ROM contents, write ports, and the done signal.
// Debug names of nodes and registers are excluded (analyses must not
// depend on them); memory names are included because jobs address
// scratchpads by name. Two modules with equal fingerprints simulate
// identically on identical jobs, which is the property the persistent
// trace cache (internal/tracecache via internal/core) keys on.
func Fingerprint(m *Module) string {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wstr := func(s string) {
		w64(uint64(len(s)))
		h.Write([]byte(s))
	}
	w64(fingerprintVersion)
	w64(uint64(len(m.Nodes)))
	for i := range m.Nodes {
		n := &m.Nodes[i]
		w64(uint64(n.Op) | uint64(n.Width)<<8 | uint64(n.NArgs)<<16)
		for a := 0; a < int(n.NArgs); a++ {
			w64(uint64(n.Args[a]))
		}
		switch n.Op {
		case OpConst:
			w64(n.Const)
		case OpMemRead:
			w64(uint64(n.Mem))
		}
	}
	w64(uint64(len(m.Regs)))
	for i := range m.Regs {
		r := &m.Regs[i]
		w64(uint64(r.Node))
		w64(uint64(r.Next))
		w64(r.Init)
	}
	w64(uint64(len(m.Mems)))
	for _, mem := range m.Mems {
		wstr(mem.Name)
		w64(uint64(mem.Words))
		if mem.ROM {
			w64(1)
			w64(uint64(len(mem.Data)))
			for _, v := range mem.Data {
				w64(v)
			}
		} else {
			w64(0)
		}
	}
	w64(uint64(len(m.Writes)))
	for _, wp := range m.Writes {
		w64(uint64(wp.Mem))
		w64(uint64(wp.Addr))
		w64(uint64(wp.Data))
		w64(uint64(wp.En))
	}
	w64(uint64(m.Done))
	return hex.EncodeToString(h.Sum(nil))
}
