package rtl_test

import (
	"math/rand"
	"testing"

	"repro/internal/rtl"
	"repro/internal/rtl/codegen"
)

// TestNativeFallback checks the unregistered-netlist path: asking for
// the native engine on a module with no generated step must return a
// fully working compiled simulator, report EngineCompiled (no silent
// masquerading), and bump the NativeFallbacks counter so the fallback
// is observable.
func TestNativeFallback(t *testing.T) {
	m := randModule(rand.New(rand.NewSource(99)))
	before := rtl.NativeFallbacks()
	s := rtl.NewSimEngine(m, rtl.EngineNative)
	if d := rtl.NativeFallbacks() - before; d < 1 {
		t.Fatalf("NativeFallbacks advanced by %d, want >= 1", d)
	}
	if got := s.Engine(); got != rtl.EngineCompiled {
		t.Fatalf("fallback sim reports engine %q, want %q", got, rtl.EngineCompiled)
	}
	// The fallback must simulate correctly, not just exist.
	ref := rtl.NewInterpSim(m)
	for cycle := 0; cycle < 32; cycle++ {
		if dr, df := ref.Step(), s.Step(); dr != df {
			t.Fatalf("cycle %d: done interp=%v fallback=%v", cycle, dr, df)
		}
		for id := range m.Nodes {
			if rv, fv := ref.Value(rtl.NodeID(id)), s.Value(rtl.NodeID(id)); rv != fv {
				t.Fatalf("cycle %d node %d: interp=%#x fallback=%#x", cycle, id, rv, fv)
			}
		}
	}
}

// TestRegisterNativeResolves checks a registered step is found by
// fingerprint and the resulting sim self-identifies as native,
// including through Clone (the serving shards' path).
func TestRegisterNativeResolves(t *testing.T) {
	m := randModule(rand.New(rand.NewSource(7)))
	rtl.RegisterNative(rtl.Fingerprint(m), "test_rand7", codegen.Build(m).Step)
	s := rtl.NewSimEngine(m, rtl.EngineNative)
	if got := s.Engine(); got != rtl.EngineNative {
		t.Fatalf("engine %q, want %q", got, rtl.EngineNative)
	}
	if got := s.Clone().Engine(); got != rtl.EngineNative {
		t.Fatalf("clone engine %q, want %q", got, rtl.EngineNative)
	}
	found := false
	for _, name := range rtl.NativeNames() {
		if name == "test_rand7" {
			found = true
		}
	}
	if !found {
		t.Fatalf("NativeNames() = %v, missing test_rand7", rtl.NativeNames())
	}
}
