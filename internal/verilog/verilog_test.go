package verilog

import (
	"testing"

	"repro/internal/rtl"
)

// evalModule elaborates src, drives the named inputs, steps once, and
// returns the named register's value.
func evalOnce(t *testing.T, src string, inputs map[string]uint64, reg string) uint64 {
	t.Helper()
	m, err := ParseAndElaborate(src)
	if err != nil {
		t.Fatal(err)
	}
	s := rtl.NewSim(m)
	for i := range m.Nodes {
		if m.Nodes[i].Op == rtl.OpInput {
			if v, ok := inputs[m.Nodes[i].Name]; ok {
				s.SetInput(rtl.NodeID(i), v)
			}
		}
	}
	s.Step()
	for ri := range m.Regs {
		if m.Regs[ri].Name == reg {
			return s.RegValue(ri)
		}
	}
	t.Fatalf("register %s not found", reg)
	return 0
}

func TestExpressionSemantics(t *testing.T) {
	src := `
module expr(input clk, input [7:0] a, input [7:0] b, output done);
  reg [7:0] sum = 0;
  reg [7:0] diff = 0;
  reg [15:0] prod = 0;
  reg [0:0] lt = 0;
  reg [7:0] sel = 0;
  reg [0:0] logic_and = 0;
  wire [7:0] masked = a & 8'h0f;
  always @(posedge clk) begin
    sum <= a + b;
    diff <= a - b;
    prod <= a * b;
    lt <= a < b;
    sel <= (a > b) ? a : b;
    logic_and <= (a != 0) && (b != 0);
  end
  assign done = masked == 0;
endmodule
`
	cases := []struct {
		a, b uint64
	}{{3, 5}, {200, 100}, {255, 255}, {0, 7}}
	for _, c := range cases {
		in := map[string]uint64{"a": c.a, "b": c.b}
		if got := evalOnce(t, src, in, "sum"); got != (c.a+c.b)&0xff {
			t.Errorf("sum(%d,%d) = %d", c.a, c.b, got)
		}
		if got := evalOnce(t, src, in, "diff"); got != (c.a-c.b)&0xff {
			t.Errorf("diff(%d,%d) = %d", c.a, c.b, got)
		}
		if got := evalOnce(t, src, in, "prod"); got != (c.a*c.b)&0xffff {
			t.Errorf("prod(%d,%d) = %d", c.a, c.b, got)
		}
		wantLT := uint64(0)
		if c.a < c.b {
			wantLT = 1
		}
		if got := evalOnce(t, src, in, "lt"); got != wantLT {
			t.Errorf("lt(%d,%d) = %d", c.a, c.b, got)
		}
		wantSel := c.b
		if c.a > c.b {
			wantSel = c.a
		}
		if got := evalOnce(t, src, in, "sel"); got != wantSel {
			t.Errorf("sel(%d,%d) = %d", c.a, c.b, got)
		}
		wantAnd := uint64(0)
		if c.a != 0 && c.b != 0 {
			wantAnd = 1
		}
		if got := evalOnce(t, src, in, "logic_and"); got != wantAnd {
			t.Errorf("and(%d,%d) = %d", c.a, c.b, got)
		}
	}
}

func TestPartAndBitSelects(t *testing.T) {
	src := `
module sel(input clk, input [15:0] x, output done);
  reg [3:0] nib = 0;
  reg [0:0] bit5 = 0;
  always @(posedge clk) begin
    nib <= x[7:4];
    bit5 <= x[5];
  end
  assign done = nib == 0;
endmodule
`
	in := map[string]uint64{"x": 0xABCD}
	if got := evalOnce(t, src, in, "nib"); got != 0xC {
		t.Errorf("x[7:4] = %#x, want 0xc", got)
	}
	if got := evalOnce(t, src, in, "bit5"); got != (0xABCD>>5)&1 {
		t.Errorf("x[5] = %d", got)
	}
}

func TestCasePriorityAndDefault(t *testing.T) {
	src := `
module fsm(input clk, input [0:0] go, output done);
  reg [1:0] state = 0;
  always @(posedge clk) begin
    case (state)
      0: if (go) state <= 1;
      1: state <= 2;
      2, 3: state <= 0;
      default: state <= 0;
    endcase
  end
  assign done = state == 2;
endmodule
`
	m, err := ParseAndElaborate(src)
	if err != nil {
		t.Fatal(err)
	}
	s := rtl.NewSim(m)
	var goID rtl.NodeID = -1
	for i := range m.Nodes {
		if m.Nodes[i].Op == rtl.OpInput {
			goID = rtl.NodeID(i)
		}
	}
	// Hold in state 0 without go, then walk 0→1→2→0.
	s.Step()
	if s.RegValue(0) != 0 {
		t.Fatalf("state moved without go: %d", s.RegValue(0))
	}
	s.SetInput(goID, 1)
	s.Step()
	s.SetInput(goID, 0)
	want := []uint64{1, 2, 0, 0}
	for i, w := range want {
		if got := s.RegValue(0); got != w {
			t.Fatalf("step %d: state=%d want %d", i, got, w)
		}
		s.Step()
	}
}

func TestSequentialOverride(t *testing.T) {
	// Within a block the last assignment wins (non-blocking semantics).
	src := `
module ov(input clk, input [0:0] c, output done);
  reg [7:0] r = 0;
  always @(posedge clk) begin
    r <= 8'd1;
    if (c) r <= 8'd2;
  end
  assign done = r == 0;
endmodule
`
	if got := evalOnce(t, src, map[string]uint64{"c": 0}, "r"); got != 1 {
		t.Errorf("r = %d, want 1", got)
	}
	if got := evalOnce(t, src, map[string]uint64{"c": 1}, "r"); got != 2 {
		t.Errorf("r = %d, want 2", got)
	}
}

func TestMemoriesAndInitialROM(t *testing.T) {
	src := `
module memy(input clk, output done);
  reg [7:0] buf2 [0:7];
  reg [7:0] lut [0:3];
  reg [3:0] i = 0;
  reg [15:0] acc = 0;
  initial begin
    lut[0] = 8'd10;
    lut[1] = 8'd20;
    lut[2] = 8'd30;
    lut[3] = 8'd40;
  end
  always @(posedge clk) begin
    i <= i + 1;
    acc <= acc + lut[i[1:0]];
    buf2[i[2:0]] <= lut[i[1:0]];
  end
  assign done = i == 9;
endmodule
`
	m, err := ParseAndElaborate(src)
	if err != nil {
		t.Fatal(err)
	}
	s := rtl.NewSim(m)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	// The run ends on the tick where i == 9 (done is combinational), and
	// acc also latches during that tick, so it accumulates i = 0..9.
	var want uint64
	lut := []uint64{10, 20, 30, 40}
	for i := 0; i <= 9; i++ {
		want += lut[i%4]
	}
	var accIdx = -1
	for ri := range m.Regs {
		if m.Regs[ri].Name == "acc" {
			accIdx = ri
		}
	}
	if got := s.RegValue(accIdx); got != want {
		t.Errorf("acc = %d, want %d", got, want)
	}
	if b := s.Mem("buf2"); b[0] != 10 || b[4] != 10 || b[3] != 40 {
		t.Errorf("buf2 = %v", b)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"module m(input clk output done); endmodule",                                  // missing comma
		"module m(input clk, output done); wire w = ;",                                // bad expr
		"module m(input clk, output done); foo bar;",                                  // unknown item
		"module m(input clk, output done);",                                           // no endmodule
		"module m(input clk, output done); always @(negedge clk) begin end endmodule", // negedge
	}
	for i, src := range cases {
		if _, err := ParseAndElaborate(src); err == nil {
			t.Errorf("case %d: invalid source accepted", i)
		}
	}
}

func TestElaborateErrors(t *testing.T) {
	cases := []string{
		// No done output.
		"module m(input clk, input [0:0] a); endmodule",
		// Undriven wire used.
		"module m(input clk, output done); wire [7:0] w; assign done = w == 0; endmodule",
		// Combinational cycle.
		"module m(input clk, output done); wire [7:0] a = b + 8'd1; wire [7:0] b = a + 8'd1; assign done = a == 0; endmodule",
		// Assignment to non-register.
		"module m(input clk, input [7:0] x, output done); always @(posedge clk) x <= 8'd0; assign done = 1'd1; endmodule",
	}
	for i, src := range cases {
		if _, err := ParseAndElaborate(src); err == nil {
			t.Errorf("case %d: invalid module accepted", i)
		}
	}
}

func TestConcatReplicationReduction(t *testing.T) {
	src := `
module crr(input clk, input [3:0] a, input [3:0] b, output done);
  reg [7:0] cat = 0;
  reg [11:0] rep = 0;
  reg [0:0] orr = 0;
  reg [0:0] andr = 0;
  reg [0:0] xorr = 0;
  always @(posedge clk) begin
    cat <= {a, b};
    rep <= {3{a}};
    orr <= |a;
    andr <= &a;
    xorr <= ^a;
  end
  assign done = cat == 0;
endmodule
`
	cases := []struct{ a, b uint64 }{{0xA, 0x3}, {0, 0xF}, {0xF, 0}, {0x5, 0x5}}
	for _, c := range cases {
		in := map[string]uint64{"a": c.a, "b": c.b}
		if got := evalOnce(t, src, in, "cat"); got != c.a<<4|c.b {
			t.Errorf("{a,b} with a=%x b=%x = %x", c.a, c.b, got)
		}
		if got := evalOnce(t, src, in, "rep"); got != c.a<<8|c.a<<4|c.a {
			t.Errorf("{3{a}} with a=%x = %x", c.a, got)
		}
		wantOr, wantAnd, wantXor := uint64(0), uint64(0), uint64(0)
		if c.a != 0 {
			wantOr = 1
		}
		if c.a == 0xF {
			wantAnd = 1
		}
		for v := c.a; v != 0; v >>= 1 {
			wantXor ^= v & 1
		}
		if got := evalOnce(t, src, in, "orr"); got != wantOr {
			t.Errorf("|%x = %d", c.a, got)
		}
		if got := evalOnce(t, src, in, "andr"); got != wantAnd {
			t.Errorf("&%x = %d", c.a, got)
		}
		if got := evalOnce(t, src, in, "xorr"); got != wantXor {
			t.Errorf("^%x = %d, want %d", c.a, got, wantXor)
		}
	}
}
