package verilog

import (
	"testing"
)

// fuzzSeedSources are valid and near-valid inputs covering the grammar:
// declarations, always blocks, case, instances, and the constructs the
// emitter produces — plus malformed fragments to push the parser down
// its error paths.
var fuzzSeedSources = []string{
	"",
	"module m; endmodule",
	"module m(input clk, input [7:0] a, output [7:0] q);\n" +
		"  reg [7:0] q;\n  always @(posedge clk) q <= a + 8'd1;\nendmodule\n",
	"module m(input clk, input [3:0] s, output reg [3:0] q);\n" +
		"  always @(posedge clk) begin\n" +
		"    case (s)\n      4'd0: q <= 4'd1;\n      default: q <= s;\n    endcase\n  end\nendmodule\n",
	"module m(input [7:0] a, input [7:0] b, output [8:0] s);\n" +
		"  assign s = {1'b0, a} + {1'b0, b};\nendmodule\n",
	"module m(input c, input [7:0] a, output [7:0] q);\n" +
		"  assign q = c ? ~a : (a << 2) | {4{c}};\nendmodule\n",
	"module top(input clk, output [7:0] q);\n" +
		"  wire [7:0] w;\n  sub u0(.clk(clk), .q(w));\n  assign q = w;\nendmodule\n" +
		"module sub(input clk, output reg [7:0] q);\n  always @(posedge clk) q <= q + 8'd1;\nendmodule\n",
	"module m #(parameter W = 8)(input [W-1:0] a, output [W-1:0] q);\n  assign q = a;\nendmodule\n",
	"module m(input clk); initial $display(\"x\"); endmodule",
	"module m(input [63:0] a, output o); assign o = ^a; endmodule",
	// Malformed fragments.
	"module",
	"module m(input [7:0] a; endmodule",
	"module m; assign = 1; endmodule",
	"module m; wire [999999999999:0] w; endmodule",
	"module m; always @(posedge) endmodule",
	"16'hzzzz",
}

// FuzzVerilogParse asserts the parser's containment properties: no
// input may panic it, and any source that survives ParseAndElaborate
// must round-trip — the emitted netlist re-parses, and a second
// emit is byte-identical (print∘parse is a fixed point).
func FuzzVerilogParse(f *testing.F) {
	for _, src := range fuzzSeedSources {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			t.Skip("bound parse cost")
		}
		// Property 1: never panic, whatever the bytes.
		mods, err := ParseFile(src)
		if err != nil {
			return
		}
		for _, mod := range mods {
			if mod.Name == "" {
				t.Errorf("accepted module with empty name")
			}
		}
		// Property 2: sources that elaborate round-trip stably.
		m, err := ParseAndElaborate(src)
		if err != nil {
			return
		}
		out1 := Emit(m)
		m2, err := ParseAndElaborate(out1)
		if err != nil {
			t.Fatalf("emitted netlist does not re-parse: %v\n--- source\n%s\n--- emitted\n%s",
				err, clip(src), clip(out1))
		}
		out2 := Emit(m2)
		if out1 != out2 {
			t.Fatalf("emit is not a fixed point\n--- first\n%s\n--- second\n%s", clip(out1), clip(out2))
		}
	})
}

func clip(s string) string {
	const max = 2000
	if len(s) <= max {
		return s
	}
	return s[:max] + "\n... (truncated)"
}
