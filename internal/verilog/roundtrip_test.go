package verilog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rtl"
)

// randNetlist builds a random valid module exercising every IR op the
// emitter supports, with registers, a memory, and a terminating done.
func randNetlist(rng *rand.Rand, trial int) (*rtl.Module, []rtl.NodeID, []uint64) {
	b := rtl.NewBuilder(fmt.Sprintf("rt%d", trial))
	mem := b.Memory("data", 16)
	memImg := make([]uint64, 16)
	for i := range memImg {
		memImg[i] = rng.Uint64() >> (rng.Intn(48) + 1)
	}
	var inputs []rtl.NodeID
	var pool []rtl.Signal
	for i := 0; i < 3; i++ {
		in := b.Input(fmt.Sprintf("i%d", i), 1+uint8(rng.Intn(32)))
		inputs = append(inputs, in.ID())
		pool = append(pool, in)
	}
	addr := b.Reg("addr", 4, 0)
	b.SetNext(addr, addr.Inc())
	pool = append(pool, b.Read(mem, addr.Signal, 1+uint8(rng.Intn(40))))
	pool = append(pool, b.Const(uint64(rng.Intn(1<<20)), 1+uint8(rng.Intn(24))))
	pick := func() rtl.Signal { return pool[rng.Intn(len(pool))] }
	for i := 0; i < 30; i++ {
		a, c := pick(), pick()
		var s rtl.Signal
		switch rng.Intn(13) {
		case 0:
			s = a.Add(c)
		case 1:
			s = a.Sub(c)
		case 2:
			s = a.Mul(c, 1+uint8(rng.Intn(48)))
		case 3:
			s = a.And(c)
		case 4:
			s = a.Or(c)
		case 5:
			s = a.Xor(c)
		case 6:
			s = a.Not()
		case 7:
			s = a.Shl(c.Trunc(5))
		case 8:
			s = a.Shr(c.Trunc(5))
		case 9:
			s = a.Eq(c)
		case 10:
			s = a.Lt(c)
		case 11:
			s = a.Le(c)
		default:
			s = pick().NonZero().Mux(a, c)
		}
		pool = append(pool, s)
	}
	for i := 0; i < 5; i++ {
		v := pick()
		init := uint64(rng.Intn(3)) & rtl.WidthMask(v.Width())
		r := b.Reg(fmt.Sprintf("rr%d", i), v.Width(), init)
		b.SetNext(r, v)
	}
	// Write something data-dependent back to memory.
	b.Write(mem, addr.Signal, pick().WidenTo(16).Trunc(16), addr.Signal.Bits(0, 1))
	cnt := b.Reg("cnt", 8, 0)
	b.SetNext(cnt, cnt.Inc())
	b.SetDone(cnt.EqK(24))
	return b.MustBuild(), inputs, memImg
}

// TestEmitParseRoundTripRandom is the backend's defining property: for
// random netlists over the full op set, Emit followed by Parse yields a
// module that is cycle-for-cycle equivalent on every register and
// memory under random stimulus.
func TestEmitParseRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 30; trial++ {
		m, inputs, memImg := randNetlist(rng, trial)
		src := Emit(m)
		m2, err := ParseAndElaborate(src)
		if err != nil {
			t.Fatalf("trial %d: re-parse: %v\n%s", trial, err, src)
		}
		s1, s2 := rtl.NewSim(m), rtl.NewSim(m2)
		if err := s1.LoadMem("data", memImg); err != nil {
			t.Fatal(err)
		}
		if err := s2.LoadMem("data", memImg); err != nil {
			t.Fatalf("trial %d: memory lost: %v", trial, err)
		}
		// Input mapping by name.
		byName := map[string]rtl.NodeID{}
		for i := range m2.Nodes {
			if m2.Nodes[i].Op == rtl.OpInput {
				byName[m2.Nodes[i].Name] = rtl.NodeID(i)
			}
		}
		for cycle := 0; cycle < 26; cycle++ {
			for _, id := range inputs {
				v := rng.Uint64()
				s1.SetInput(id, v)
				// The emitter names inputs in<id>_<origname>.
				name := fmt.Sprintf("in%d_%s", id, m.Nodes[id].Name)
				nid, ok := byName[name]
				if !ok {
					t.Fatalf("trial %d: input %s missing after round trip", trial, name)
				}
				s2.SetInput(nid, v)
			}
			d1 := s1.Step()
			d2 := s2.Step()
			if d1 != d2 {
				t.Fatalf("trial %d cycle %d: done diverged", trial, cycle)
			}
			for ri := range m.Regs {
				if s1.RegValue(ri) != s2.RegValue(ri) {
					t.Fatalf("trial %d cycle %d: reg %s: %d vs %d\n%s",
						trial, cycle, m.Regs[ri].Name, s1.RegValue(ri), s2.RegValue(ri), src)
				}
			}
		}
		d1 := s1.Mem("data")
		d2 := s2.Mem("data")
		for a := range d1 {
			if d1[a]&0xffff != d2[a]&0xffff {
				t.Fatalf("trial %d: mem[%d]: %d vs %d", trial, a, d1[a], d2[a])
			}
		}
	}
}
