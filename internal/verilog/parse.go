package verilog

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lex *lexer
	tok token
	err error
	src string
}

// Parse parses one module from Verilog source.
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src), src: src}
	p.advance()
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("trailing input after endmodule")
	}
	return m, nil
}

// ParseFile parses a source file containing one or more modules.
func ParseFile(src string) ([]*Module, error) {
	p := &parser{lex: newLexer(src), src: src}
	p.advance()
	var mods []*Module
	for p.tok.kind != tokEOF {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	if len(mods) == 0 {
		return nil, p.errorf("no modules in source")
	}
	return mods, nil
}

// ParseFileNamed parses like ParseFile but records the file name on
// every module, so elaboration can stamp rtl nodes with source
// provenance and lint diagnostics can cite file:line spans.
func ParseFileNamed(src, file string) ([]*Module, error) {
	mods, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	for _, m := range mods {
		m.File = file
	}
	return mods, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("verilog: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	t, err := p.lex.next()
	if err != nil {
		p.err = err
		p.tok = token{kind: tokEOF}
		return
	}
	p.tok = t
}

func (p *parser) expectSymbol(s string) error {
	if p.err != nil {
		return p.err
	}
	if p.tok.kind != tokSymbol || p.tok.text != s {
		return p.errorf("expected %q, found %q", s, p.tok.text)
	}
	p.advance()
	return nil
}

func (p *parser) expectKeyword(s string) error {
	if p.err != nil {
		return p.err
	}
	if p.tok.kind != tokKeyword || p.tok.text != s {
		return p.errorf("expected %q, found %q", s, p.tok.text)
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.err != nil {
		return "", p.err
	}
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected identifier, found %q", p.tok.text)
	}
	name := p.tok.text
	p.advance()
	return name, nil
}

func (p *parser) atSymbol(s string) bool {
	return p.err == nil && p.tok.kind == tokSymbol && p.tok.text == s
}

func (p *parser) atKeyword(s string) bool {
	return p.err == nil && p.tok.kind == tokKeyword && p.tok.text == s
}

// parseRange parses an optional [msb:lsb]; returns (0,0) if absent.
func (p *parser) parseRange() (int, int, error) {
	if !p.atSymbol("[") {
		return 0, 0, p.err
	}
	p.advance()
	msb, err := p.expectConstInt()
	if err != nil {
		return 0, 0, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return 0, 0, err
	}
	lsb, err := p.expectConstInt()
	if err != nil {
		return 0, 0, err
	}
	if err := p.expectSymbol("]"); err != nil {
		return 0, 0, err
	}
	if msb < lsb {
		return 0, 0, p.errorf("descending ranges only: [%d:%d]", msb, lsb)
	}
	return msb, lsb, nil
}

func (p *parser) expectConstInt() (int, error) {
	if p.err != nil {
		return 0, p.err
	}
	if p.tok.kind != tokNumber {
		return 0, p.errorf("expected number, found %q", p.tok.text)
	}
	v := int(p.tok.val)
	p.advance()
	return v, nil
}

func (p *parser) parseModule() (*Module, error) {
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name, Line: p.tok.line}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for !p.atSymbol(")") {
		port, err := p.parsePort()
		if err != nil {
			return nil, err
		}
		m.Ports = append(m.Ports, port)
		if p.atSymbol(",") {
			p.advance()
		}
	}
	p.advance() // )
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	for !p.atKeyword("endmodule") {
		if p.err != nil {
			return nil, p.err
		}
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unexpected EOF inside module %s", name)
		}
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, item)
	}
	p.advance() // endmodule
	return m, nil
}

func (p *parser) parsePort() (Port, error) {
	port := Port{Line: p.tok.line}
	switch {
	case p.atKeyword("input"):
		p.advance()
	case p.atKeyword("output"):
		port.Output = true
		p.advance()
	default:
		return port, p.errorf("port must start with input/output, found %q", p.tok.text)
	}
	if p.atKeyword("reg") {
		port.IsReg = true
		p.advance()
	}
	msb, lsb, err := p.parseRange()
	if err != nil {
		return port, err
	}
	port.MSB, port.LSB = msb, lsb
	port.Name, err = p.expectIdent()
	return port, err
}

func (p *parser) parseItem() (Item, error) {
	switch {
	case p.atKeyword("wire"):
		return p.parseWire()
	case p.atKeyword("reg"):
		return p.parseReg()
	case p.atKeyword("assign"):
		return p.parseAssign()
	case p.atKeyword("always"):
		return p.parseAlways()
	case p.atKeyword("parameter") || p.atKeyword("localparam"):
		return p.parseParam()
	case p.atKeyword("initial"):
		return p.parseInitial()
	case p.tok.kind == tokIdent:
		return p.parseInstance()
	}
	return nil, p.errorf("unsupported item starting with %q", p.tok.text)
}

func (p *parser) parseWire() (Item, error) {
	line := p.tok.line
	p.advance()
	msb, lsb, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	w := &WireDecl{Name: name, MSB: msb, LSB: lsb, Line: line}
	if p.atSymbol("=") {
		p.advance()
		w.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return w, p.expectSymbol(";")
}

func (p *parser) parseReg() (Item, error) {
	line := p.tok.line
	p.advance()
	msb, lsb, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	r := &RegDecl{Name: name, MSB: msb, LSB: lsb, Line: line}
	if p.atSymbol("[") {
		r.Array = true
		r.AMSB, r.ALSB, err = p.parseArrayRange()
		if err != nil {
			return nil, err
		}
	}
	if p.atSymbol("=") {
		p.advance()
		if p.tok.kind != tokNumber {
			return nil, p.errorf("register initializer must be a literal")
		}
		r.HasInit = true
		r.Init = p.tok.val
		p.advance()
	}
	return r, p.expectSymbol(";")
}

// parseArrayRange parses [a:b] in either order (memories are commonly
// declared [0:N-1]).
func (p *parser) parseArrayRange() (int, int, error) {
	p.advance() // [
	a, err := p.expectConstInt()
	if err != nil {
		return 0, 0, err
	}
	if err := p.expectSymbol(":"); err != nil {
		return 0, 0, err
	}
	b, err := p.expectConstInt()
	if err != nil {
		return 0, 0, err
	}
	if err := p.expectSymbol("]"); err != nil {
		return 0, 0, err
	}
	if a < b {
		return b, a, nil
	}
	return a, b, nil
}

func (p *parser) parseAssign() (Item, error) {
	line := p.tok.line
	p.advance()
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Name: name, Expr: e, Line: line}, p.expectSymbol(";")
}

func (p *parser) parseParam() (Item, error) {
	line := p.tok.line
	p.advance()
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	if p.tok.kind != tokNumber {
		return nil, p.errorf("parameter value must be a literal")
	}
	val := p.tok.val
	p.advance()
	return &ParamDecl{Name: name, Val: val, Line: line}, p.expectSymbol(";")
}

// parseInitial parses `initial begin name[addr] = value; ... end` —
// the constant-table (ROM) initialization form the emitter produces.
func (p *parser) parseInitial() (Item, error) {
	line := p.tok.line
	p.advance()
	if err := p.expectKeyword("begin"); err != nil {
		return nil, err
	}
	blk := &InitialBlock{Line: line}
	for !p.atKeyword("end") {
		if p.err != nil {
			return nil, p.err
		}
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unexpected EOF inside initial block")
		}
		wLine := p.tok.line
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("["); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errorf("initial-block address must be a literal")
		}
		addr := p.tok.val
		p.advance()
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errorf("initial-block value must be a literal")
		}
		val := p.tok.val
		p.advance()
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
		blk.Writes = append(blk.Writes, MemInit{Name: name, Addr: addr, Val: val, Line: wLine})
	}
	p.advance()
	return blk, nil
}

// parseInstance parses `ModName instName ( .port(expr), ... );`.
func (p *parser) parseInstance() (Item, error) {
	line := p.tok.line
	modName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	instName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	inst := &Instance{Module: modName, Name: instName, Line: line}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for !p.atSymbol(")") {
		if err := p.expectSymbol("."); err != nil {
			return nil, err
		}
		port, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		ex, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		inst.Conns = append(inst.Conns, Conn{Port: port, Expr: ex})
		if p.atSymbol(",") {
			p.advance()
		}
	}
	p.advance() // )
	return inst, p.expectSymbol(";")
}

func (p *parser) parseAlways() (Item, error) {
	line := p.tok.line
	p.advance()
	if err := p.expectSymbol("@"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("posedge"); err != nil {
		return nil, err
	}
	clock, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &AlwaysBlock{Clock: clock, Body: body, Line: line}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("begin"):
		p.advance()
		blk := &Block{}
		for !p.atKeyword("end") {
			if p.err != nil {
				return nil, p.err
			}
			if p.tok.kind == tokEOF {
				return nil, p.errorf("unexpected EOF inside begin/end")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
		p.advance()
		return blk, nil
	case p.atKeyword("if"):
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: then}
		if p.atKeyword("else") {
			p.advance()
			st.Else, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	case p.atKeyword("case"):
		return p.parseCase()
	case p.tok.kind == tokIdent:
		return p.parseNBAssign()
	}
	return nil, p.errorf("unsupported statement starting with %q", p.tok.text)
}

func (p *parser) parseCase() (Stmt, error) {
	p.advance()
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	cs := &Case{Subject: subj}
	for !p.atKeyword("endcase") {
		if p.err != nil {
			return nil, p.err
		}
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unexpected EOF inside case")
		}
		if p.atKeyword("default") {
			p.advance()
			if err := p.expectSymbol(":"); err != nil {
				return nil, err
			}
			cs.Default, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
			continue
		}
		var item CaseItem
		for {
			lbl, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.Labels = append(item.Labels, lbl)
			if p.atSymbol(",") {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectSymbol(":"); err != nil {
			return nil, err
		}
		item.Body, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
		cs.Items = append(cs.Items, item)
	}
	p.advance()
	return cs, nil
}

func (p *parser) parseNBAssign() (Stmt, error) {
	line := p.tok.line
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &NBAssign{Name: name, Line: line}
	if p.atSymbol("[") {
		p.advance()
		st.Index, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
	}
	if err := p.expectSymbol("<="); err != nil {
		return nil, err
	}
	st.RHS, err = p.parseExpr()
	if err != nil {
		return nil, err
	}
	return st, p.expectSymbol(";")
}

// Expression parsing with precedence climbing.

// binPrec maps operators to binding power (higher binds tighter).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10,
}

func (p *parser) parseExpr() (Expr, error) {
	e, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.atSymbol("?") {
		p.advance()
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(":"); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{Sel: e, A: a, B: b}, nil
	}
	return e, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tokSymbol {
			return lhs, nil
		}
		prec, ok := binPrec[p.tok.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.text
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokSymbol {
		switch p.tok.text {
		case "~", "!", "-":
			op := p.tok.text
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: op, X: x}, nil
		case "|", "&", "^":
			// Unary reduction operators (the binary forms never start
			// an expression, so this position is unambiguous).
			op := p.tok.text
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Reduce{Op: op, X: x}, nil
		}
	}
	return p.parsePrimary()
}

// parseConcat parses {a, b, ...} or {N{x}} after the opening brace.
func (p *parser) parseConcat() (Expr, error) {
	p.advance() // {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// Replication: {N{x}}.
	if p.atSymbol("{") {
		count, ok := constOf(first)
		if !ok {
			return nil, p.errorf("replication count must be a literal")
		}
		if count == 0 || count > 64 {
			return nil, p.errorf("replication count %d out of range", count)
		}
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}"); err != nil {
			return nil, err
		}
		return &Repl{Count: count, X: x}, nil
	}
	c := &Concat{Parts: []Expr{first}}
	for p.atSymbol(",") {
		p.advance()
		part, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Parts = append(c.Parts, part)
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tokNumber:
		n := &Num{Val: p.tok.val, Width: p.tok.width}
		p.advance()
		return n, nil
	case p.tok.kind == tokIdent:
		name := p.tok.text
		p.advance()
		if p.atSymbol("[") {
			p.advance()
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.atSymbol(":") {
				p.advance()
				msb, ok := constOf(first)
				if !ok {
					return nil, p.errorf("part select bounds must be constant")
				}
				lsbE, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lsb, ok := constOf(lsbE)
				if !ok {
					return nil, p.errorf("part select bounds must be constant")
				}
				if err := p.expectSymbol("]"); err != nil {
					return nil, err
				}
				return &PartSelect{Name: name, MSB: int(msb), LSB: int(lsb)}, nil
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			return &Index{Name: name, At: first}, nil
		}
		return &Ref{Name: name}, nil
	case p.atSymbol("("):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectSymbol(")")
	case p.atSymbol("{"):
		return p.parseConcat()
	}
	return nil, p.errorf("unexpected token %q in expression", p.tok.text)
}

// constOf evaluates a parsed expression if it is a plain literal.
func constOf(e Expr) (uint64, bool) {
	if n, ok := e.(*Num); ok {
		return n.Val, true
	}
	return 0, false
}
