package verilog

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// Emit renders an rtl.Module as synthesizable Verilog: one wire per
// combinational node, registers updated in a single always block,
// memories as reg arrays with write ports, ROM contents in an initial
// block. The output parses back through this package's frontend, which
// the round-trip tests rely on; it is also how generated hardware
// slices leave the flow for a real synthesis tool.
func Emit(m *rtl.Module) string {
	var sb strings.Builder
	e := &emitter{m: m, sb: &sb}
	e.emit()
	return sb.String()
}

type emitter struct {
	m  *rtl.Module
	sb *strings.Builder
	// names maps node IDs to Verilog identifiers.
	names []string
}

func sanitize(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if isIdentPart(c) && c != '$' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	if len(out) == 0 || isDigit(out[0]) {
		out = append([]byte{'s'}, out...)
	}
	return string(out)
}

func (e *emitter) emit() {
	m := e.m
	e.names = make([]string, len(m.Nodes))

	// Port list: clk, inputs, done.
	var ports []string
	ports = append(ports, "input clk")
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.Op != rtl.OpInput {
			continue
		}
		name := fmt.Sprintf("in%d_%s", i, sanitize(n.Name))
		e.names[i] = name
		ports = append(ports, fmt.Sprintf("input [%d:0] %s", n.Width-1, name))
	}
	ports = append(ports, "output done")
	fmt.Fprintf(e.sb, "module %s(%s);\n", sanitize(m.Name), strings.Join(ports, ", "))

	// Registers.
	for ri := range m.Regs {
		r := &m.Regs[ri]
		name := fmt.Sprintf("r%d_%s", ri, sanitize(r.Name))
		e.names[r.Node] = name
		w := m.Nodes[r.Node].Width
		fmt.Fprintf(e.sb, "  reg [%d:0] %s = %d'd%d;\n", w-1, name, w, r.Init)
	}

	// Memories keep their original (sanitized) names so job images load
	// by the same scratchpad names after a parse round trip.
	memNames := make([]string, len(m.Mems))
	seen := map[string]bool{}
	for mi, mem := range m.Mems {
		name := sanitize(mem.Name)
		if seen[name] {
			name = fmt.Sprintf("%s_%d", name, mi)
		}
		seen[name] = true
		memNames[mi] = name
		fmt.Fprintf(e.sb, "  reg [63:0] %s [0:%d];\n", name, mem.Words-1)
	}

	// Combinational nodes in SSA order.
	for i := range m.Nodes {
		n := &m.Nodes[i]
		switch n.Op {
		case rtl.OpInput, rtl.OpReg:
			continue
		case rtl.OpConst:
			e.names[i] = fmt.Sprintf("%d'd%d", n.Width, n.Const)
			continue
		}
		name := fmt.Sprintf("n%d", i)
		e.names[i] = name
		fmt.Fprintf(e.sb, "  wire [%d:0] %s = %s;\n", n.Width-1, name, e.expr(i, memNames))
	}

	// ROM contents.
	hasROM := false
	for _, mem := range m.Mems {
		if mem.ROM && len(mem.Data) > 0 {
			hasROM = true
		}
	}
	if hasROM {
		fmt.Fprintf(e.sb, "  initial begin\n")
		for mi, mem := range m.Mems {
			if !mem.ROM {
				continue
			}
			for a, v := range mem.Data {
				fmt.Fprintf(e.sb, "    %s[%d] = 64'd%d;\n", memNames[mi], a, v)
			}
		}
		fmt.Fprintf(e.sb, "  end\n")
	}

	// Sequential logic.
	if len(m.Regs) > 0 || len(m.Writes) > 0 {
		fmt.Fprintf(e.sb, "  always @(posedge clk) begin\n")
		for ri := range m.Regs {
			r := &m.Regs[ri]
			fmt.Fprintf(e.sb, "    %s <= %s;\n", e.names[r.Node], e.names[r.Next])
		}
		for _, w := range m.Writes {
			fmt.Fprintf(e.sb, "    if (%s) %s[%s] <= %s;\n",
				e.names[w.En], memNames[w.Mem], e.names[w.Addr], e.names[w.Data])
		}
		fmt.Fprintf(e.sb, "  end\n")
	}

	fmt.Fprintf(e.sb, "  assign done = %s != 1'd0;\n", e.names[m.Done])
	fmt.Fprintf(e.sb, "endmodule\n")
}

// expr renders one combinational node's defining expression. The
// frontend uses self-determined widths (each operator works at the
// wider of its operand widths), so when the node is wider than an
// operand the operand is explicitly zero-extended — this is what makes
// emit → parse an exact behavioural round trip.
func (e *emitter) expr(i int, memNames []string) string {
	n := &e.m.Nodes[i]
	// a renders argument k, zero-extended to the node's width when the
	// node is wider (widening matters for carries, shifts, and ~).
	a := func(k int) string {
		id := n.Args[k]
		name := e.names[id]
		if e.m.Nodes[id].Width < n.Width {
			return fmt.Sprintf("(%s | %d'd0)", name, n.Width)
		}
		return name
	}
	// raw renders argument k at its own width (selectors, comparisons).
	raw := func(k int) string { return e.names[n.Args[k]] }
	// cmp renders a comparison with both operands at the wider width.
	cmp := func(op string) string {
		x, y := n.Args[0], n.Args[1]
		wx, wy := e.m.Nodes[x].Width, e.m.Nodes[y].Width
		sx, sy := e.names[x], e.names[y]
		if wx < wy {
			sx = fmt.Sprintf("(%s | %d'd0)", sx, wy)
		} else if wy < wx {
			sy = fmt.Sprintf("(%s | %d'd0)", sy, wx)
		}
		return fmt.Sprintf("%s %s %s", sx, op, sy)
	}
	switch n.Op {
	case rtl.OpAdd:
		return fmt.Sprintf("%s + %s", a(0), a(1))
	case rtl.OpSub:
		return fmt.Sprintf("%s - %s", a(0), a(1))
	case rtl.OpMul:
		return fmt.Sprintf("%s * %s", a(0), a(1))
	case rtl.OpAnd:
		return fmt.Sprintf("%s & %s", a(0), a(1))
	case rtl.OpOr:
		return fmt.Sprintf("%s | %s", a(0), a(1))
	case rtl.OpXor:
		return fmt.Sprintf("%s ^ %s", a(0), a(1))
	case rtl.OpNot:
		return fmt.Sprintf("~%s", a(0))
	case rtl.OpShl:
		return fmt.Sprintf("%s << %s", a(0), raw(1))
	case rtl.OpShr:
		return fmt.Sprintf("%s >> %s", a(0), raw(1))
	case rtl.OpEq:
		return cmp("==")
	case rtl.OpNe:
		return cmp("!=")
	case rtl.OpLt:
		return cmp("<")
	case rtl.OpLe:
		return cmp("<=")
	case rtl.OpMux:
		return fmt.Sprintf("%s ? %s : %s", raw(0), a(1), a(2))
	case rtl.OpMemRead:
		return fmt.Sprintf("%s[%s]", memNames[n.Mem], raw(0))
	}
	return "0"
}
