package verilog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rtl"
)

// Warning is a non-fatal finding from elaboration: a wire that is
// declared but never driven (and never read — a driven-and-read wire
// missing its driver is a hard error), or a driven wire nothing reads.
// Package lint converts these into diagnostics so `rtlcheck` surfaces
// them alongside netlist-level rules.
type Warning struct {
	// Module is the module the signal is declared in; Name carries the
	// flattened (instance-prefixed) signal name.
	Module string
	Name   string
	// File and Line locate the declaration ("" when the source had no
	// recorded file name).
	File string
	Line int
	// Kind is "undriven-wire" or "unused-wire".
	Kind string
	Msg  string
}

func (w Warning) String() string {
	loc := fmt.Sprintf("line %d", w.Line)
	if w.File != "" {
		loc = fmt.Sprintf("%s:%d", w.File, w.Line)
	}
	return fmt.Sprintf("%s: %s: %s", w.Module, loc, w.Msg)
}

// Elaborate lowers a parsed module to an rtl.Module:
//
//   - input ports become rtl inputs (the clock is identified from the
//     always blocks and not materialized — the rtl simulator is
//     implicitly clocked),
//   - wires and assigns become combinational expressions, elaborated in
//     dependency order,
//   - plain regs become rtl registers; array regs become memories,
//   - each always @(posedge clk) block is symbolically executed into
//     per-register next-value mux trees and memory write ports —
//     non-blocking semantics, last assignment wins, if/else and case
//     compose path conditions,
//   - the output port named "done" becomes the module's done signal.
//
// Width semantics are simplified relative to the LRM: unsized literals
// take their minimal width, and every operator works at the wider of
// its operand widths (comparisons are 1 bit). This matches the rtl IR
// and is sufficient for the accelerator subset.
func Elaborate(m *Module) (*rtl.Module, error) {
	return ElaborateHierarchy([]*Module{m}, m.Name)
}

// ParseAndElaborate is the one-call frontend. Sources with several
// modules are elaborated hierarchically: the *last* module is the top
// (the common Verilog file convention of leaves-first), instances are
// flattened into one netlist with dotted name prefixes, exactly as a
// synthesis tool's flatten pass would.
func ParseAndElaborate(src string) (*rtl.Module, error) {
	m, _, err := ParseAndElaborateWarn(src)
	return m, err
}

// ParseAndElaborateWarn is ParseAndElaborate with elaboration warnings.
func ParseAndElaborateWarn(src string) (*rtl.Module, []Warning, error) {
	mods, err := ParseFile(src)
	if err != nil {
		return nil, nil, err
	}
	return ElaborateHierarchyWarn(mods, mods[len(mods)-1].Name)
}

// ElaborateHierarchy elaborates the named top module against a library
// of modules, inlining every instance.
func ElaborateHierarchy(mods []*Module, top string) (*rtl.Module, error) {
	m, _, err := ElaborateHierarchyWarn(mods, top)
	return m, err
}

// ElaborateHierarchyWarn elaborates like ElaborateHierarchy and also
// returns the non-fatal warnings (undriven or unused wires) collected
// across the whole hierarchy, in deterministic order.
func ElaborateHierarchyWarn(mods []*Module, top string) (*rtl.Module, []Warning, error) {
	lib := map[string]*Module{}
	for _, m := range mods {
		if _, dup := lib[m.Name]; dup {
			return nil, nil, fmt.Errorf("verilog: module %s defined twice", m.Name)
		}
		lib[m.Name] = m
	}
	ast, ok := lib[top]
	if !ok {
		return nil, nil, fmt.Errorf("verilog: top module %s not found", top)
	}
	var warns []Warning
	e := newElaborator(ast, rtl.NewBuilder(ast.Name), lib, "", true, nil)
	e.warns = &warns
	if err := e.run(); err != nil {
		return nil, nil, err
	}
	m, err := e.b.Build()
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(warns, func(i, j int) bool {
		a, b := warns[i], warns[j]
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Name < b.Name
	})
	return m, warns, nil
}

type wireDef struct {
	expr  Expr
	width uint8
	sig   rtl.Signal
	done  bool
	busy  bool // cycle detection
	line  int
	// inst drives this wire when it is connected to an instance output.
	inst *instanceState
	// instPort is the child port driving the wire.
	instPort string
}

type memDef struct {
	mem   *rtl.Mem
	width uint8
}

// instanceState tracks one instantiation's elaboration.
type instanceState struct {
	ast  *Module
	inst *Instance
	// inputs maps child input ports to parent-context expressions.
	inputs map[string]Expr
	// clockPorts are child inputs fed by the parent's clock.
	clockPorts map[string]bool
	// outputs holds the child's elaborated output signals.
	outputs map[string]rtl.Signal
	done    bool
	busy    bool
}

type elaborator struct {
	ast    *Module
	b      *rtl.Builder
	lib    map[string]*Module
	prefix string
	isTop  bool
	// preBound supplies signals for input ports when this elaborator is
	// an inlined child (the parent lowered the connection expressions).
	preBound map[string]rtl.Signal
	// stack guards against recursive instantiation.
	stack []string

	wires     map[string]*wireDef
	regs      map[string]rtl.RegSignal
	mems      map[string]*memDef
	params    map[string]uint64
	inputs    map[string]rtl.Signal
	widths    map[string]uint8
	instances []*instanceState
	clock     string
	// skipClock marks this (child) module's input ports that the parent
	// fed with its clock; clockNames collects every name known to carry
	// the clock so it can be recognized in further instantiations.
	skipClock  map[string]bool
	clockNames map[string]bool
	// warns collects non-fatal findings; shared with child elaborators
	// so one flattening pass yields the hierarchy's full warning list.
	warns *[]Warning
}

// isClockName reports whether a referenced identifier is the module's
// clock (directly or via a clock-fed port).
func (e *elaborator) isClockName(name string) bool {
	return name == e.clock || e.clockNames[name]
}

func newElaborator(ast *Module, b *rtl.Builder, lib map[string]*Module,
	prefix string, isTop bool, stack []string) *elaborator {
	return &elaborator{
		ast:        ast,
		b:          b,
		lib:        lib,
		prefix:     prefix,
		isTop:      isTop,
		stack:      append(stack, ast.Name),
		wires:      map[string]*wireDef{},
		regs:       map[string]rtl.RegSignal{},
		mems:       map[string]*memDef{},
		params:     map[string]uint64{},
		inputs:     map[string]rtl.Signal{},
		widths:     map[string]uint8{},
		clockNames: map[string]bool{},
	}
}

// run performs the full elaboration sequence for this module.
func (e *elaborator) run() error {
	if err := e.declare(); err != nil {
		return err
	}
	if err := e.checkUndriven(); err != nil {
		return err
	}
	if err := e.lowerAlways(); err != nil {
		return err
	}
	if err := e.bindOutputs(); err != nil {
		return err
	}
	e.reportUnused()
	return nil
}

// warn records a non-fatal finding, filling in module identity.
func (e *elaborator) warn(kind, name string, line int, format string, args ...any) {
	if e.warns == nil {
		return
	}
	*e.warns = append(*e.warns, Warning{
		Module: e.ast.Name,
		Name:   e.prefix + name,
		File:   e.ast.File,
		Line:   line,
		Kind:   kind,
		Msg:    fmt.Sprintf(format, args...),
	})
}

// checkUndriven finds every wire with no driver in one pass, instead of
// failing lazily on whichever one a signalOf walk reaches first. An
// undriven wire that something reads (an expression, or an output port
// that bindOutputs will resolve) is a hard error — all offenders are
// reported together. An undriven wire nothing reads degrades to an
// "undriven-wire" warning; the netlist is unaffected either way.
func (e *elaborator) checkUndriven() error {
	var undriven []string
	for name, wd := range e.wires { //detlint:allow sorted below before reporting
		if wd.expr == nil && wd.inst == nil {
			undriven = append(undriven, name)
		}
	}
	if len(undriven) == 0 {
		return nil
	}
	sort.Strings(undriven)
	read := e.referencedNames()
	for _, p := range e.ast.Ports {
		if p.Output {
			read[p.Name] = true
		}
	}
	var fatal []string
	for _, name := range undriven {
		wd := e.wires[name]
		if read[name] {
			fatal = append(fatal, fmt.Sprintf("%s (line %d)", name, wd.line))
			continue
		}
		e.warn("undriven-wire", name, wd.line, "wire %s is never driven (and never read)", name)
	}
	if len(fatal) > 0 {
		return fmt.Errorf("verilog: %s: wires read but never driven: %s",
			e.ast.Name, strings.Join(fatal, ", "))
	}
	return nil
}

// referencedNames collects every identifier the module's expressions
// read: wire init expressions, continuous assignments, always bodies,
// and instance input connections.
func (e *elaborator) referencedNames() map[string]bool {
	read := map[string]bool{}
	var walkExpr func(Expr)
	walkExpr = func(x Expr) {
		switch v := x.(type) {
		case *Ref:
			read[v.Name] = true
		case *Index:
			read[v.Name] = true
			walkExpr(v.At)
		case *PartSelect:
			read[v.Name] = true
		case *Unary:
			walkExpr(v.X)
		case *Binary:
			walkExpr(v.X)
			walkExpr(v.Y)
		case *Cond:
			walkExpr(v.Sel)
			walkExpr(v.A)
			walkExpr(v.B)
		case *Concat:
			for _, p := range v.Parts {
				walkExpr(p)
			}
		case *Repl:
			walkExpr(v.X)
		case *Reduce:
			walkExpr(v.X)
		}
	}
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				walkStmt(sub)
			}
		case *If:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *Case:
			walkExpr(st.Subject)
			for _, item := range st.Items {
				for _, lbl := range item.Labels {
					walkExpr(lbl)
				}
				walkStmt(item.Body)
			}
			if st.Default != nil {
				walkStmt(st.Default)
			}
		case *NBAssign:
			if st.Index != nil {
				walkExpr(st.Index)
			}
			walkExpr(st.RHS)
		}
	}
	for _, item := range e.ast.Items {
		switch it := item.(type) {
		case *WireDecl:
			if it.Init != nil {
				walkExpr(it.Init)
			}
		case *AssignStmt:
			walkExpr(it.Expr)
		case *AlwaysBlock:
			walkStmt(it.Body)
		case *Instance:
			for _, conn := range it.Conns {
				if conn.Expr != nil {
					walkExpr(conn.Expr)
				}
			}
		}
	}
	return read
}

// reportUnused warns about driven wires that nothing ever read — their
// logic was parsed but contributes no netlist nodes.
func (e *elaborator) reportUnused() {
	var names []string
	for name, wd := range e.wires { //detlint:allow sorted immediately below
		if !wd.done && (wd.expr != nil || wd.inst != nil) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		e.warn("unused-wire", name, e.wires[name].line, "wire %s is driven but never read", name)
	}
}

// clockOf scans a module's always blocks for its clock name.
func clockOf(m *Module) string {
	for _, item := range m.Items {
		if a, ok := item.(*AlwaysBlock); ok {
			return a.Clock
		}
	}
	return ""
}

func (e *elaborator) errorf(line int, format string, args ...any) error {
	return fmt.Errorf("verilog: %s: line %d: %s", e.ast.Name, line, fmt.Sprintf(format, args...))
}

// atLine stamps source provenance on nodes built from here on, so lint
// diagnostics on Verilog-sourced designs carry file:line spans. A
// no-op when the source had no recorded file name.
func (e *elaborator) atLine(line int) {
	if e.ast.File != "" && line > 0 {
		e.b.SetSrc(e.ast.File, line)
	}
}

// declare processes ports, parameters, declarations, and continuous
// assignments (recording wire definitions without elaborating yet).
func (e *elaborator) declare() error {
	// Identify the clock first so its port is skipped, and collect ROM
	// contents from initial blocks so array declarations know whether
	// they are ROMs.
	romData := map[string]map[uint64]uint64{}
	for _, item := range e.ast.Items {
		switch it := item.(type) {
		case *AlwaysBlock:
			if e.clock != "" && e.clock != it.Clock {
				return e.errorf(it.Line, "multiple clock domains (%s, %s) are not supported", e.clock, it.Clock)
			}
			e.clock = it.Clock
		case *InitialBlock:
			for _, w := range it.Writes {
				if romData[w.Name] == nil {
					romData[w.Name] = map[uint64]uint64{}
				}
				romData[w.Name][w.Addr] = w.Val
			}
		}
	}
	for _, port := range e.ast.Ports {
		w := port.Width()
		if w == 0 || w > 64 {
			return e.errorf(port.Line, "port %s width %d out of range", port.Name, w)
		}
		e.widths[port.Name] = w
		if port.Output {
			if port.IsReg {
				e.atLine(port.Line)
				e.regs[port.Name] = e.b.Reg(e.prefix+port.Name, w, 0)
			} else {
				// Driven by an assign; recorded as an (as yet undefined) wire.
				e.wires[port.Name] = &wireDef{width: w, line: port.Line}
			}
			continue
		}
		if port.Name == e.clock {
			e.clockNames[port.Name] = true
			continue
		}
		if e.skipClock[port.Name] {
			e.clockNames[port.Name] = true
			continue
		}
		if e.preBound != nil {
			sig, ok := e.preBound[port.Name]
			if !ok {
				return e.errorf(port.Line, "instance input %s is unconnected", port.Name)
			}
			e.inputs[port.Name] = fitWidth(sig, w)
			continue
		}
		e.inputs[port.Name] = e.b.Input(port.Name, w)
	}
	for _, item := range e.ast.Items {
		switch it := item.(type) {
		case *ParamDecl:
			e.params[it.Name] = it.Val
		case *WireDecl:
			w := uint8(it.MSB - it.LSB + 1)
			if w == 0 || w > 64 {
				return e.errorf(it.Line, "wire %s width out of range", it.Name)
			}
			if _, dup := e.wires[it.Name]; dup {
				return e.errorf(it.Line, "wire %s redeclared", it.Name)
			}
			e.widths[it.Name] = w
			e.wires[it.Name] = &wireDef{expr: it.Init, width: w, line: it.Line}
		case *RegDecl:
			w := uint8(it.MSB - it.LSB + 1)
			if w == 0 || w > 64 {
				return e.errorf(it.Line, "reg %s width out of range", it.Name)
			}
			if it.Array {
				words := it.AMSB - it.ALSB + 1
				if words <= 0 {
					return e.errorf(it.Line, "memory %s has no words", it.Name)
				}
				if init, isROM := romData[it.Name]; isROM {
					data := make([]uint64, words)
					for a, v := range init { //detlint:allow index-addressed stores, order-independent
						if a >= uint64(words) {
							return e.errorf(it.Line, "initial write to %s[%d] out of range", it.Name, a)
						}
						data[a] = v
					}
					e.mems[it.Name] = &memDef{mem: e.b.ROM(e.prefix+it.Name, data), width: w}
					continue
				}
				e.mems[it.Name] = &memDef{mem: e.b.Memory(e.prefix+it.Name, words), width: w}
				continue
			}
			init := uint64(0)
			if it.HasInit {
				init = it.Init
			}
			e.widths[it.Name] = w
			e.atLine(it.Line)
			e.regs[it.Name] = e.b.Reg(e.prefix+it.Name, w, init)
		case *AssignStmt:
			wd, ok := e.wires[it.Name]
			if !ok {
				return e.errorf(it.Line, "assign to undeclared wire %s", it.Name)
			}
			if wd.expr != nil {
				return e.errorf(it.Line, "wire %s assigned twice", it.Name)
			}
			wd.expr = it.Expr
		case *AlwaysBlock:
			// handled in lowerAlways
		case *Instance:
			if err := e.declareInstance(it); err != nil {
				return err
			}
		}
	}
	return nil
}

// declareInstance classifies an instantiation's connections and wires
// its output ports to the parent wires they drive.
func (e *elaborator) declareInstance(it *Instance) error {
	child, ok := e.lib[it.Module]
	if !ok {
		return e.errorf(it.Line, "unknown module %s", it.Module)
	}
	for _, name := range e.stack {
		if name == it.Module {
			return e.errorf(it.Line, "recursive instantiation of %s", it.Module)
		}
	}
	st := &instanceState{
		ast:        child,
		inst:       it,
		inputs:     map[string]Expr{},
		outputs:    map[string]rtl.Signal{},
		clockPorts: map[string]bool{},
	}
	e.instances = append(e.instances, st)
	childClock := clockOf(child)
	dirs := map[string]bool{} // port -> isOutput
	for _, p := range child.Ports {
		dirs[p.Name] = p.Output
	}
	for _, conn := range it.Conns {
		isOut, ok := dirs[conn.Port]
		if !ok {
			return e.errorf(it.Line, "module %s has no port %s", it.Module, conn.Port)
		}
		if !isOut {
			// The clock is implicit in the rtl model: skip a connection
			// to the child's clock, and also any connection fed by the
			// parent's own clock (a purely combinational child has no
			// always block, so its clk port is only identifiable this
			// way).
			if conn.Port == childClock {
				continue
			}
			if ref, isRef := conn.Expr.(*Ref); isRef && e.isClockName(ref.Name) {
				st.clockPorts[conn.Port] = true
				continue
			}
			st.inputs[conn.Port] = conn.Expr
			continue
		}
		ref, ok := conn.Expr.(*Ref)
		if !ok {
			return e.errorf(it.Line, "output port %s must connect to a plain wire", conn.Port)
		}
		wd, ok := e.wires[ref.Name]
		if !ok {
			return e.errorf(it.Line, "output port %s connects to undeclared wire %s", conn.Port, ref.Name)
		}
		if wd.expr != nil || wd.inst != nil {
			return e.errorf(it.Line, "wire %s driven twice", ref.Name)
		}
		wd.inst = st
		wd.instPort = conn.Port
	}
	return nil
}

// elaborateInstance inlines a child module: parent connection
// expressions become the child's input signals, the child's logic is
// built into the shared netlist under a dotted prefix, and its output
// port signals are captured.
func (e *elaborator) elaborateInstance(st *instanceState, line int) error {
	if st.done {
		return nil
	}
	if st.busy {
		return e.errorf(line, "combinational cycle through instance %s", st.inst.Name)
	}
	st.busy = true
	pre := map[string]rtl.Signal{}
	childClock := clockOf(st.ast)
	for _, p := range st.ast.Ports {
		if p.Output || p.Name == childClock || st.clockPorts[p.Name] {
			continue
		}
		ex, ok := st.inputs[p.Name]
		if !ok {
			return e.errorf(st.inst.Line, "instance %s leaves input %s unconnected", st.inst.Name, p.Name)
		}
		sig, err := e.lowerExprW(ex, st.inst.Line, p.Width())
		if err != nil {
			return err
		}
		pre[p.Name] = sig
	}
	ce := newElaborator(st.ast, e.b, e.lib, e.prefix+st.inst.Name+".", false, e.stack)
	ce.preBound = pre
	ce.skipClock = st.clockPorts
	ce.warns = e.warns
	if err := ce.run(); err != nil {
		return err
	}
	for _, p := range st.ast.Ports {
		if !p.Output {
			continue
		}
		sig, err := ce.signalOf(p.Name, p.Line)
		if err != nil {
			return err
		}
		st.outputs[p.Name] = sig
	}
	st.busy = false
	st.done = true
	return nil
}

// signalOf resolves a name to its combinational signal, elaborating
// wires on demand (dependency order with cycle detection).
func (e *elaborator) signalOf(name string, line int) (rtl.Signal, error) {
	if s, ok := e.inputs[name]; ok {
		return s, nil
	}
	if r, ok := e.regs[name]; ok {
		return r.Signal, nil
	}
	if v, ok := e.params[name]; ok {
		return e.b.Const(v, rtl.WidthFor(v)), nil
	}
	if wd, ok := e.wires[name]; ok {
		if wd.done {
			return wd.sig, nil
		}
		if wd.busy {
			return rtl.Signal{}, e.errorf(line, "combinational cycle through wire %s", name)
		}
		wd.busy = true
		var sig rtl.Signal
		switch {
		case wd.inst != nil:
			if err := e.elaborateInstance(wd.inst, line); err != nil {
				return rtl.Signal{}, err
			}
			sig = wd.inst.outputs[wd.instPort]
		case wd.expr != nil:
			var err error
			e.atLine(wd.line)
			sig, err = e.lowerExprW(wd.expr, wd.line, wd.width)
			if err != nil {
				return rtl.Signal{}, err
			}
		default:
			return rtl.Signal{}, e.errorf(wd.line, "wire %s is never driven", name)
		}
		sig = fitWidth(sig, wd.width)
		wd.busy = false
		wd.done = true
		wd.sig = sig
		return sig, nil
	}
	return rtl.Signal{}, e.errorf(line, "undeclared identifier %s", name)
}

// fitWidth coerces a signal to an exact width (truncate or zero-extend
// via the builder's Trunc / Or-widening).
func fitWidth(s rtl.Signal, w uint8) rtl.Signal {
	if s.Width() == w {
		return s
	}
	if s.Width() > w {
		return s.Trunc(w)
	}
	// Widen: builder Or with a zero constant of the target width.
	return widen(s, w)
}

// widthOfExpr computes an expression's self-determined width per the
// (simplified) LRM rules.
func (e *elaborator) widthOfExpr(x Expr) uint8 {
	switch v := x.(type) {
	case *Num:
		if v.Width != 0 {
			return v.Width
		}
		return rtl.WidthFor(v.Val)
	case *Ref:
		if w, ok := e.widths[v.Name]; ok {
			return w
		}
		if p, ok := e.params[v.Name]; ok {
			return rtl.WidthFor(p)
		}
		return 1
	case *Index:
		if md, ok := e.mems[v.Name]; ok {
			return md.width
		}
		return 1 // bit select
	case *PartSelect:
		return uint8(v.MSB - v.LSB + 1)
	case *Unary:
		if v.Op == "!" {
			return 1
		}
		return e.widthOfExpr(v.X)
	case *Binary:
		switch v.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return 1
		case "<<", ">>":
			return e.widthOfExpr(v.X)
		}
		wx, wy := e.widthOfExpr(v.X), e.widthOfExpr(v.Y)
		if wy > wx {
			return wy
		}
		return wx
	case *Cond:
		wa, wb := e.widthOfExpr(v.A), e.widthOfExpr(v.B)
		if wb > wa {
			return wb
		}
		return wa
	case *Concat:
		var w int
		for _, part := range v.Parts {
			w += int(e.widthOfExpr(part))
		}
		if w > 64 {
			w = 64
		}
		return uint8(w)
	case *Repl:
		w := int(v.Count) * int(e.widthOfExpr(v.X))
		if w > 64 {
			w = 64
		}
		return uint8(w)
	case *Reduce:
		return 1
	}
	return 1
}

// lowerExprW lowers an expression under a context width: the result and
// the operands of context-propagating operators (+ - * & | ^ ~ unary-
// minus ?:, and the left operand of shifts) are computed at
// max(self-determined, ctx), matching Verilog's context-determined
// sizing for the cases the subset supports. Comparisons, logical
// operators, selects and shift amounts are self-determined.
func (e *elaborator) lowerExprW(x Expr, line int, ctx uint8) (rtl.Signal, error) {
	final := e.widthOfExpr(x)
	if ctx > final {
		final = ctx
	}
	if final > 64 {
		return rtl.Signal{}, e.errorf(line, "expression wider than 64 bits")
	}
	switch v := x.(type) {
	case *Num:
		if v.Width != 0 && v.Val&^rtl.WidthMask(v.Width) != 0 {
			return rtl.Signal{}, e.errorf(line, "literal %d exceeds its %d-bit size", v.Val, v.Width)
		}
		return e.b.Const(v.Val, final), nil
	case *Unary:
		switch v.Op {
		case "~":
			xs, err := e.lowerExprW(v.X, line, final)
			if err != nil {
				return rtl.Signal{}, err
			}
			return fitWidth(xs, final).Not(), nil
		case "-":
			xs, err := e.lowerExprW(v.X, line, final)
			if err != nil {
				return rtl.Signal{}, err
			}
			zero := e.b.Const(0, final)
			return zero.Sub(fitWidth(xs, final)), nil
		case "!":
			xs, err := e.lowerExprW(v.X, line, 0)
			if err != nil {
				return rtl.Signal{}, err
			}
			return xs.IsZero(), nil
		}
	case *Binary:
		switch v.Op {
		case "+", "-", "*", "&", "|", "^":
			a, err := e.lowerExprW(v.X, line, final)
			if err != nil {
				return rtl.Signal{}, err
			}
			bsig, err := e.lowerExprW(v.Y, line, final)
			if err != nil {
				return rtl.Signal{}, err
			}
			a, bsig = fitWidth(a, final), fitWidth(bsig, final)
			switch v.Op {
			case "+":
				return a.Add(bsig), nil
			case "-":
				return a.Sub(bsig), nil
			case "*":
				return a.Mul(bsig, final), nil
			case "&":
				return a.And(bsig), nil
			case "|":
				return a.Or(bsig), nil
			case "^":
				return a.Xor(bsig), nil
			}
		case "<<", ">>":
			a, err := e.lowerExprW(v.X, line, final)
			if err != nil {
				return rtl.Signal{}, err
			}
			amt, err := e.lowerExprW(v.Y, line, 0)
			if err != nil {
				return rtl.Signal{}, err
			}
			a = fitWidth(a, final)
			if v.Op == "<<" {
				return a.Shl(amt), nil
			}
			return a.Shr(amt), nil
		}
		// Comparisons and logical ops: self-determined, width 1.
		return e.lowerExpr(x, line)
	case *Cond:
		sel, err := e.lowerExprW(v.Sel, line, 0)
		if err != nil {
			return rtl.Signal{}, err
		}
		a, err := e.lowerExprW(v.A, line, final)
		if err != nil {
			return rtl.Signal{}, err
		}
		bb, err := e.lowerExprW(v.B, line, final)
		if err != nil {
			return rtl.Signal{}, err
		}
		return sel.NonZero().Mux(fitWidth(a, final), fitWidth(bb, final)), nil
	}
	// Leaves and everything else: self-determined lowering, widened.
	s, err := e.lowerExpr(x, line)
	if err != nil {
		return rtl.Signal{}, err
	}
	if s.Width() < final {
		s = widen(s, final)
	}
	return s, nil
}

// lowerExpr converts an AST expression into a signal.
func (e *elaborator) lowerExpr(x Expr, line int) (rtl.Signal, error) {
	switch v := x.(type) {
	case *Num:
		w := v.Width
		if w == 0 {
			w = rtl.WidthFor(v.Val)
		}
		if v.Val&^rtl.WidthMask(w) != 0 {
			return rtl.Signal{}, e.errorf(line, "literal %d exceeds its %d-bit size", v.Val, w)
		}
		return e.b.Const(v.Val, w), nil
	case *Ref:
		return e.signalOf(v.Name, line)
	case *PartSelect:
		base, err := e.signalOf(v.Name, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		if v.MSB < v.LSB || v.MSB >= int(base.Width()) {
			return rtl.Signal{}, e.errorf(line, "part select %s[%d:%d] out of range", v.Name, v.MSB, v.LSB)
		}
		return base.Bits(uint8(v.LSB), uint8(v.MSB-v.LSB+1)), nil
	case *Index:
		if md, ok := e.mems[v.Name]; ok {
			addr, err := e.lowerExpr(v.At, line)
			if err != nil {
				return rtl.Signal{}, err
			}
			return e.b.Read(md.mem, addr, md.width), nil
		}
		base, err := e.signalOf(v.Name, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		at, err := e.lowerExpr(v.At, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		return base.Shr(at).Trunc(1), nil
	case *Unary:
		xs, err := e.lowerExpr(v.X, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		switch v.Op {
		case "~":
			return xs.Not(), nil
		case "!":
			return xs.IsZero(), nil
		case "-":
			zero := e.b.Const(0, xs.Width())
			return zero.Sub(xs), nil
		}
		return rtl.Signal{}, e.errorf(line, "unsupported unary %q", v.Op)
	case *Binary:
		a, err := e.lowerExpr(v.X, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		bsig, err := e.lowerExpr(v.Y, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		switch v.Op {
		case "+":
			return a.Add(bsig), nil
		case "-":
			return a.Sub(bsig), nil
		case "*":
			w := a.Width()
			if bsig.Width() > w {
				w = bsig.Width()
			}
			return a.Mul(bsig, w), nil
		case "&":
			return a.And(bsig), nil
		case "|":
			return a.Or(bsig), nil
		case "^":
			return a.Xor(bsig), nil
		case "<<":
			return a.Shl(bsig), nil
		case ">>":
			return a.Shr(bsig), nil
		case "==":
			return eqWidths(a, bsig), nil
		case "!=":
			return eqWidths(a, bsig).Not(), nil
		case "<":
			return ltWidths(a, bsig), nil
		case "<=":
			return ltWidths(bsig, a).Not(), nil
		case ">":
			return ltWidths(bsig, a), nil
		case ">=":
			return ltWidths(a, bsig).Not(), nil
		case "&&":
			return a.NonZero().And(bsig.NonZero()), nil
		case "||":
			return a.NonZero().Or(bsig.NonZero()), nil
		}
		return rtl.Signal{}, e.errorf(line, "unsupported operator %q", v.Op)
	case *Cond:
		sel, err := e.lowerExpr(v.Sel, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		a, err := e.lowerExpr(v.A, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		bb, err := e.lowerExpr(v.B, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		return sel.NonZero().Mux(a, bb), nil
	case *Concat:
		return e.lowerConcat(v.Parts, line)
	case *Repl:
		parts := make([]Expr, v.Count)
		for i := range parts {
			parts[i] = v.X
		}
		return e.lowerConcat(parts, line)
	case *Reduce:
		xs, err := e.lowerExpr(v.X, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		switch v.Op {
		case "|":
			return xs.NonZero(), nil
		case "&":
			return xs.Eq(e.b.Const(rtl.WidthMask(xs.Width()), xs.Width())), nil
		case "^":
			return parity(xs), nil
		}
		return rtl.Signal{}, e.errorf(line, "unsupported reduction %q", v.Op)
	}
	return rtl.Signal{}, e.errorf(line, "unsupported expression %T", x)
}

// lowerConcat assembles parts MSB-first into one vector.
func (e *elaborator) lowerConcat(parts []Expr, line int) (rtl.Signal, error) {
	if len(parts) == 0 {
		return rtl.Signal{}, e.errorf(line, "empty concatenation")
	}
	total := 0
	sigs := make([]rtl.Signal, len(parts))
	for i, part := range parts {
		s, err := e.lowerExpr(part, line)
		if err != nil {
			return rtl.Signal{}, err
		}
		sigs[i] = s
		total += int(s.Width())
	}
	if total > 64 {
		return rtl.Signal{}, e.errorf(line, "concatenation wider than 64 bits (%d)", total)
	}
	w := uint8(total)
	acc := widen(sigs[0], w)
	for _, s := range sigs[1:] {
		acc = acc.Shl(e.b.Const(uint64(s.Width()), 7)).Or(widen(s, w))
	}
	return acc, nil
}

// parity XOR-folds a signal to one bit.
func parity(x rtl.Signal) rtl.Signal {
	s := x
	for sh := uint8(32); sh >= 1; sh /= 2 {
		if x.Width() > sh {
			s = s.Xor(s.ShrK(sh))
		}
	}
	return s.Trunc(1)
}

// eqWidths compares signals of possibly different widths by widening
// the narrower (unsigned semantics).
func eqWidths(a, b rtl.Signal) rtl.Signal {
	a, b = matchWidths(a, b)
	return a.Eq(b)
}

func ltWidths(a, b rtl.Signal) rtl.Signal {
	a, b = matchWidths(a, b)
	return a.Lt(b)
}

func matchWidths(a, b rtl.Signal) (rtl.Signal, rtl.Signal) {
	switch {
	case a.Width() < b.Width():
		return widen(a, b.Width()), b
	case b.Width() < a.Width():
		return a, widen(b, a.Width())
	}
	return a, b
}

// lowerAlways symbolically executes every always block into per-reg
// next values and memory writes.
func (e *elaborator) lowerAlways() error {
	// Accumulated next values start as "hold".
	next := map[string]rtl.Signal{}
	for name, r := range e.regs { //detlint:allow keyed map fill, order-independent
		next[name] = r.Signal
	}
	for _, item := range e.ast.Items {
		a, ok := item.(*AlwaysBlock)
		if !ok {
			continue
		}
		if err := e.execStmt(a.Body, rtl.Signal{}, false, next, a.Line); err != nil {
			return err
		}
	}
	// Bind in sorted order: fitWidth may create widening nodes, and node
	// IDs must not depend on map iteration order or the emitted netlist
	// (and everything keyed on it) would differ between runs.
	names := make([]string, 0, len(e.regs))
	for name := range e.regs { //detlint:allow sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := e.regs[name]
		e.b.SetNext(r, fitWidth(next[name], r.Width()))
	}
	return nil
}

// execStmt walks a statement under a path condition. haveCond marks
// whether cond is meaningful (the root of an always body has none).
func (e *elaborator) execStmt(s Stmt, cond rtl.Signal, haveCond bool, next map[string]rtl.Signal, line int) error {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			if err := e.execStmt(sub, cond, haveCond, next, line); err != nil {
				return err
			}
		}
		return nil
	case *If:
		c, err := e.lowerExpr(st.Cond, line)
		if err != nil {
			return err
		}
		c = c.NonZero()
		thenCond, elseCond := c, c.Not()
		if haveCond {
			thenCond = cond.And(c)
			elseCond = cond.And(c.Not())
		}
		if err := e.execStmt(st.Then, thenCond, true, next, line); err != nil {
			return err
		}
		if st.Else != nil {
			if err := e.execStmt(st.Else, elseCond, true, next, line); err != nil {
				return err
			}
		}
		return nil
	case *Case:
		subj, err := e.lowerExpr(st.Subject, line)
		if err != nil {
			return err
		}
		// First matching item wins; prevMatched excludes earlier arms.
		var prev rtl.Signal
		havePrev := false
		for _, item := range st.Items {
			var match rtl.Signal
			haveMatch := false
			for _, lbl := range item.Labels {
				ls, err := e.lowerExpr(lbl, line)
				if err != nil {
					return err
				}
				eq := eqWidths(subj, ls)
				if haveMatch {
					match = match.Or(eq)
				} else {
					match, haveMatch = eq, true
				}
			}
			armCond := match
			if havePrev {
				armCond = match.And(prev.Not())
			}
			full := armCond
			if haveCond {
				full = cond.And(armCond)
			}
			if err := e.execStmt(item.Body, full, true, next, line); err != nil {
				return err
			}
			if havePrev {
				prev = prev.Or(match)
			} else {
				prev, havePrev = match, true
			}
		}
		if st.Default != nil {
			var noMatch rtl.Signal
			if havePrev {
				noMatch = prev.Not()
			} else {
				noMatch = e.b.Const(1, 1)
			}
			full := noMatch
			if haveCond {
				full = cond.And(noMatch)
			}
			if err := e.execStmt(st.Default, full, true, next, line); err != nil {
				return err
			}
		}
		return nil
	case *NBAssign:
		e.atLine(st.Line)
		// Context width for the RHS is the assignment target's width.
		var ctxW uint8
		if st.Index != nil {
			if md, ok := e.mems[st.Name]; ok {
				ctxW = md.width
			}
		} else if r, ok := e.regs[st.Name]; ok {
			ctxW = r.Width()
		}
		rhs, err := e.lowerExprW(st.RHS, st.Line, ctxW)
		if err != nil {
			return err
		}
		if st.Index != nil {
			md, ok := e.mems[st.Name]
			if !ok {
				return e.errorf(st.Line, "indexed assignment to non-memory %s", st.Name)
			}
			addr, err := e.lowerExpr(st.Index, st.Line)
			if err != nil {
				return err
			}
			en := cond
			if !haveCond {
				en = e.b.Const(1, 1)
			}
			e.b.Write(md.mem, addr, fitWidth(rhs, md.width), en)
			return nil
		}
		r, ok := e.regs[st.Name]
		if !ok {
			return e.errorf(st.Line, "non-blocking assignment to non-register %s", st.Name)
		}
		rhs = fitWidth(rhs, r.Width())
		if !haveCond {
			next[st.Name] = rhs
			return nil
		}
		next[st.Name] = cond.Mux(rhs, next[st.Name])
		return nil
	}
	return e.errorf(line, "unsupported statement %T", s)
}

// bindOutputs elaborates output wires, forces instances that drive no
// read output to elaborate anyway (their state machines and memory
// writes are still part of the design), and wires the top-level done.
func (e *elaborator) bindOutputs() error {
	var doneSet bool
	for _, port := range e.ast.Ports {
		if !port.Output {
			continue
		}
		sig, err := e.signalOf(port.Name, port.Line)
		if err != nil {
			return err
		}
		if e.isTop && port.Name == "done" {
			e.b.SetDone(sig.NonZero())
			doneSet = true
		}
	}
	for _, st := range e.instances {
		if err := e.elaborateInstance(st, st.inst.Line); err != nil {
			return err
		}
	}
	if e.isTop && !doneSet {
		return fmt.Errorf("verilog: %s: top module must have an output named done", e.ast.Name)
	}
	return nil
}

// widen zero-extends a signal (helper shared with fitWidth).
func widen(s rtl.Signal, w uint8) rtl.Signal {
	return s.WidenTo(w)
}
