// Package verilog implements a frontend and backend for a synthesizable
// Verilog-2001 subset: parsing accelerator RTL into the rtl IR (the
// role Yosys plays in the paper's flow, §3.3) and emitting rtl modules
// — including generated hardware slices — back out as Verilog.
//
// The subset covers what the paper's analyses need from third-party
// accelerator RTL:
//
//   - module with input/output ports, vector ranges
//   - wire declarations with initializers and assign statements
//   - reg declarations with initial values, including 1-D arrays
//     (scratchpad memories)
//   - one clock domain: always @(posedge clk) with begin/end, if/else,
//     case/default, non-blocking assignments, and memory writes
//   - the usual expression operators with C-like precedence, sized and
//     unsized literals, bit- and part-selects, array indexing,
//     concatenation {a,b}, replication {N{x}}, and the |,&,^ reductions
//   - initial blocks holding constant-table (ROM) contents
//   - module hierarchy: instantiation with named port connections,
//     flattened into one netlist with dotted name prefixes
//
// Elaboration lowers always-blocks to per-register next-value mux trees
// by symbolic execution — the same "proc" lowering a synthesis tool
// performs — after which FSM/counter detection, instrumentation and
// slicing run unchanged.
package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // carries value and optional explicit width
	tokSymbol // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"wire": true, "reg": true, "assign": true, "always": true,
	"posedge": true, "begin": true, "end": true, "if": true, "else": true,
	"case": true, "endcase": true, "default": true, "parameter": true,
	"localparam": true, "integer": true, "initial": true,
}

// token is one lexical token with position info for error messages.
type token struct {
	kind  tokKind
	text  string
	val   uint64 // for numbers
	width uint8  // 0 = unsized
	line  int
}

// lexer scans Verilog source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// errorf formats a lexical error with position.
func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("verilog: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return l.errorf("unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// next scans one token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '\'':
		// Unsized based literal like 'h1f.
		return l.lexBasedLiteral(0)
	default:
		// Multi-char operators first.
		for _, op := range [...]string{"<=", ">=", "==", "!=", "&&", "||", "<<", ">>"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return token{kind: tokSymbol, text: op, line: l.line}, nil
			}
		}
		l.pos++
		return token{kind: tokSymbol, text: string(c), line: l.line}, nil
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
		l.pos++
	}
	digits := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	if l.pos < len(l.src) && l.src[l.pos] == '\'' {
		// Sized based literal: the decimal we just read is the width.
		var width uint64
		for _, d := range digits {
			width = width*10 + uint64(d-'0')
		}
		if width == 0 || width > 64 {
			return token{}, l.errorf("literal width %d out of range", width)
		}
		return l.lexBasedLiteral(uint8(width))
	}
	var v uint64
	for _, d := range digits {
		v = v*10 + uint64(d-'0')
	}
	return token{kind: tokNumber, val: v, line: l.line}, nil
}

// lexBasedLiteral scans 'd10 / 'hff / 'b1010 after the quote.
func (l *lexer) lexBasedLiteral(width uint8) (token, error) {
	l.pos++ // consume '
	if l.pos >= len(l.src) {
		return token{}, l.errorf("truncated based literal")
	}
	base := l.src[l.pos]
	l.pos++
	var radix uint64
	switch base {
	case 'd', 'D':
		radix = 10
	case 'h', 'H':
		radix = 16
	case 'b', 'B':
		radix = 2
	case 'o', 'O':
		radix = 8
	default:
		return token{}, l.errorf("unknown literal base %q", base)
	}
	start := l.pos
	for l.pos < len(l.src) && (isHexDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
		l.pos++
	}
	digits := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	if digits == "" {
		return token{}, l.errorf("empty based literal")
	}
	var v uint64
	for _, d := range strings.ToLower(digits) {
		var dv uint64
		switch {
		case d >= '0' && d <= '9':
			dv = uint64(d - '0')
		case d >= 'a' && d <= 'f':
			dv = uint64(d-'a') + 10
		default:
			return token{}, l.errorf("bad digit %q", d)
		}
		if dv >= radix {
			return token{}, l.errorf("digit %q out of range for base %d", d, radix)
		}
		v = v*radix + dv
	}
	return token{kind: tokNumber, val: v, width: width, line: l.line}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
