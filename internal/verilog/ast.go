package verilog

// Abstract syntax for the supported subset. The parser produces this;
// the elaborator lowers it to an rtl.Module.

// Module is one parsed Verilog module.
type Module struct {
	Name  string
	Ports []Port
	Items []Item
	Line  int
	// File is the source file the module was parsed from ("" when the
	// source came from a string). It seeds rtl node provenance so lint
	// diagnostics can point at Verilog lines.
	File string
}

// Port is a module port declaration.
type Port struct {
	Name   string
	Output bool
	IsReg  bool
	// MSB/LSB of the vector range; both zero for a scalar.
	MSB, LSB int
	Line     int
}

// Width returns the port's bit width.
func (p Port) Width() uint8 { return uint8(p.MSB - p.LSB + 1) }

// Item is a module body item.
type Item interface{ itemNode() }

// WireDecl declares a wire, optionally with an inline continuous
// assignment.
type WireDecl struct {
	Name     string
	MSB, LSB int
	Init     Expr // nil if none
	Line     int
}

// RegDecl declares a register or (with Array) a memory.
type RegDecl struct {
	Name     string
	MSB, LSB int
	// Array bounds; Array is false for plain registers.
	Array      bool
	AMSB, ALSB int
	HasInit    bool
	Init       uint64
	Line       int
}

// AssignStmt is a continuous assignment to a wire or output.
type AssignStmt struct {
	Name string
	Expr Expr
	Line int
}

// AlwaysBlock is always @(posedge clk) stmt.
type AlwaysBlock struct {
	Clock string
	Body  Stmt
	Line  int
}

// ParamDecl is parameter/localparam NAME = value.
type ParamDecl struct {
	Name string
	Val  uint64
	Line int
}

// InitialBlock holds memory initialization: initial begin m[0] = v; end.
type InitialBlock struct {
	Writes []MemInit
	Line   int
}

// MemInit is one `name[addr] = value;` inside an initial block.
type MemInit struct {
	Name string
	Addr uint64
	Val  uint64
	Line int
}

// Instance is a module instantiation with named port connections:
// Child u0 (.in(x), .out(y));
type Instance struct {
	// Module is the instantiated module's name; Name the instance name.
	Module, Name string
	Conns        []Conn
	Line         int
}

// Conn is one .port(expr) connection. For output ports the expression
// must be a plain reference to a declared wire in the parent.
type Conn struct {
	Port string
	Expr Expr
}

func (*WireDecl) itemNode()     {}
func (*RegDecl) itemNode()      {}
func (*AssignStmt) itemNode()   {}
func (*AlwaysBlock) itemNode()  {}
func (*ParamDecl) itemNode()    {}
func (*InitialBlock) itemNode() {}
func (*Instance) itemNode()     {}

// Stmt is a procedural statement.
type Stmt interface{ stmtNode() }

// Block is begin ... end.
type Block struct{ Stmts []Stmt }

// If is if (cond) then [else].
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
}

// Case is case (subject) items [default] endcase.
type Case struct {
	Subject Expr
	Items   []CaseItem
	Default Stmt // nil if absent
}

// CaseItem is one labelled arm (possibly with several labels).
type CaseItem struct {
	Labels []Expr
	Body   Stmt
}

// NBAssign is a non-blocking assignment: name <= expr, or
// name[index] <= expr for a memory write.
type NBAssign struct {
	Name  string
	Index Expr // nil for plain register assignment
	RHS   Expr
	Line  int
}

func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*Case) stmtNode()     {}
func (*NBAssign) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Num is a literal with optional explicit width (0 = unsized).
type Num struct {
	Val   uint64
	Width uint8
}

// Ref names a wire, reg, port, or parameter.
type Ref struct{ Name string }

// Index is name[expr]: array read, or bit select on a vector.
type Index struct {
	Name string
	At   Expr
}

// PartSelect is name[msb:lsb] on a vector.
type PartSelect struct {
	Name     string
	MSB, LSB int
}

// Unary is op expr for ~ ! -.
type Unary struct {
	Op string
	X  Expr
}

// Binary is x op y.
type Binary struct {
	Op   string
	X, Y Expr
}

// Cond is sel ? a : b.
type Cond struct {
	Sel, A, B Expr
}

// Concat is {a, b, ...} — a is the most significant part.
type Concat struct {
	Parts []Expr
}

// Repl is {N{x}} — N copies of x concatenated.
type Repl struct {
	Count uint64
	X     Expr
}

// Reduce is a unary reduction: |x, &x, ^x (1-bit result).
type Reduce struct {
	Op string
	X  Expr
}

func (*Num) exprNode()        {}
func (*Ref) exprNode()        {}
func (*Index) exprNode()      {}
func (*PartSelect) exprNode() {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Concat) exprNode()     {}
func (*Repl) exprNode()       {}
func (*Reduce) exprNode()     {}
