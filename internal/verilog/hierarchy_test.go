package verilog

import (
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/instrument"
	"repro/internal/rtl"
	"repro/internal/slice"
)

// hierSrc is a two-level design: a top module instantiating a counter
// child and an adder child, in the leaves-first file convention.
const hierSrc = `
module counter(input clk, input [0:0] en, input [7:0] limit, output hit, output [7:0] value);
  reg [7:0] c = 0;
  always @(posedge clk) begin
    if (en) begin
      if (c == limit) c <= 0;
      else c <= c + 8'd1;
    end
  end
  assign hit = c == limit;
  assign value = c;
endmodule

module adder(input clk, input [7:0] a, input [7:0] b, output [8:0] sum);
  assign sum = a + b;
endmodule

module top(input clk, input [7:0] lim, output done);
  wire [0:0] h;
  wire [7:0] v;
  wire [8:0] s;
  reg [8:0] latched = 0;
  reg [7:0] hits = 0;
  counter u_cnt (.clk(clk), .en(1'd1), .limit(lim), .hit(h), .value(v));
  adder u_add (.clk(clk), .a(v), .b(lim), .sum(s));
  always @(posedge clk) begin
    latched <= s;
    if (h) hits <= hits + 8'd1;
  end
  assign done = hits == 3;
endmodule
`

func TestHierarchyElaboration(t *testing.T) {
	m, err := ParseAndElaborate(hierSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Child registers appear with dotted prefixes.
	names := map[string]bool{}
	for ri := range m.Regs {
		names[m.Regs[ri].Name] = true
	}
	if !names["u_cnt.c"] {
		t.Errorf("child register not inlined: regs %v", names)
	}
	if !names["latched"] || !names["hits"] {
		t.Errorf("top registers missing: %v", names)
	}

	// Behaviour: with limit 4 the counter cycles 0..4; done after 3 hits.
	s := rtl.NewSim(m)
	var limID rtl.NodeID = -1
	for i := range m.Nodes {
		if m.Nodes[i].Op == rtl.OpInput && m.Nodes[i].Name == "lim" {
			limID = rtl.NodeID(i)
		}
	}
	s.SetInput(limID, 4)
	ticks, err := s.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	// The counter hits its limit every 5 ticks (value 4 held one tick),
	// so three hits arrive by ~15 ticks.
	if ticks < 10 || ticks > 30 {
		t.Errorf("ticks = %d, expected ~15", ticks)
	}
	// The latched adder output equals v + lim for some cycle; at the
	// done cycle v was just reset, so check it stayed within range.
	for ri := range m.Regs {
		if m.Regs[ri].Name == "latched" {
			if got := s.RegValue(ri); got > 8 {
				t.Errorf("latched = %d, want v+lim <= 8", got)
			}
		}
	}
}

func TestHierarchyAnalysisSeesChildStructure(t *testing.T) {
	m, err := ParseAndElaborate(hierSrc)
	if err != nil {
		t.Fatal(err)
	}
	a := analyze.Analyze(m)
	// The child's counter must be detected in the flattened netlist.
	found := false
	for _, c := range a.Counters {
		if c.Name == "u_cnt.c" {
			found = true
		}
	}
	if !found {
		t.Errorf("child counter not detected; counters: %v", counterNames(a))
	}
}

func counterNames(a *analyze.Analysis) []string {
	var names []string
	for _, c := range a.Counters {
		names = append(names, c.Name)
	}
	return names
}

func TestHierarchyErrors(t *testing.T) {
	cases := []struct {
		name, src string
		wantErr   string
	}{
		{
			"unknown module",
			`module top(input clk, output done);
			   wire [0:0] x;
			   nosuch u0 (.q(x));
			   assign done = x;
			 endmodule`,
			"unknown module",
		},
		{
			"unknown port",
			`module kid(input clk, input [0:0] a, output q);
			   assign q = a;
			 endmodule
			 module top(input clk, output done);
			   wire [0:0] x;
			   kid u0 (.nope(x), .q(x));
			   assign done = x;
			 endmodule`,
			"no port",
		},
		{
			"unconnected input",
			`module kid(input clk, input [0:0] a, output q);
			   assign q = a;
			 endmodule
			 module top(input clk, output done);
			   wire [0:0] x;
			   kid u0 (.q(x));
			   assign done = x;
			 endmodule`,
			"unconnected",
		},
		{
			"output to expression",
			`module kid(input clk, input [0:0] a, output q);
			   assign q = a;
			 endmodule
			 module top(input clk, input [0:0] i, output done);
			   kid u0 (.a(i), .q(i + 1'd1));
			   assign done = i;
			 endmodule`,
			"plain wire",
		},
		{
			"recursive instantiation",
			`module top(input clk, output done);
			   wire [0:0] x;
			   top u0 (.done(x));
			   assign done = x;
			 endmodule`,
			"recursive",
		},
	}
	for _, c := range cases {
		_, err := ParseAndElaborate(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// TestHierarchicalAccelerator runs the full pipeline on a two-module
// design shaped like the paper's Figure 9: a top controller
// instantiating a variable-latency compute block.
func TestHierarchicalAccelerator(t *testing.T) {
	src := `
module engine(input clk, input [0:0] start, input [7:0] work, output busy);
  reg [7:0] cnt = 0;
  always @(posedge clk) begin
    if (start) cnt <= work;
    else if (cnt != 0) cnt <= cnt - 8'd1;
  end
  assign busy = cnt != 0;
endmodule

module hiertop(input clk, output done);
  reg [31:0] items [0:31];
  reg [5:0] idx = 1;
  reg [1:0] state = 0;
  wire [5:0] n = items[0];
  wire [31:0] item = items[idx];
  wire [0:0] busy;
  wire [0:0] kick = state == 0;
  engine u_eng (.clk(clk), .start(kick), .work(item[7:0]), .busy(busy));
  always @(posedge clk) begin
    case (state)
      0: state <= 1;
      1: if (!busy) begin
        idx <= idx + 6'd1;
        state <= (idx >= n) ? 2'd2 : 2'd0;
      end
    endcase
  end
  assign done = state == 2;
endmodule
`
	m, err := ParseAndElaborate(src)
	if err != nil {
		t.Fatal(err)
	}
	a := analyze.Analyze(m)
	// The engine's latency counter (with a load arm) must be found.
	var hasLoadCounter bool
	for _, c := range a.Counters {
		if c.Name == "u_eng.cnt" && len(c.Loads) == 1 && c.Dir == analyze.Down {
			hasLoadCounter = true
		}
	}
	if !hasLoadCounter {
		t.Errorf("engine counter not recovered: %v", counterNames(a))
	}
	if len(a.FSMs) == 0 {
		t.Error("top FSM not recovered")
	}
	// And the design simulates: 3 items of known latency.
	s := rtl.NewSim(m)
	if err := s.LoadMem("items", []uint64{3, 5, 0, 9}); err != nil {
		t.Fatal(err)
	}
	ticks, err := s.Run(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	// Per item: 1 kick tick + latency ticks in state 1 (+1 exit tick).
	// Exact timing checked loosely; the essential property is that
	// work-dependent latency flows through the instance boundary.
	if ticks < 14+2 || ticks > 30 {
		t.Errorf("ticks = %d for items {5,0,9}", ticks)
	}
}

// TestHierarchicalSliceEquivalence runs the slicer over the flattened
// two-module accelerator: the multi-exit wait on the engine's counter
// must be elided, the slice must run faster, and every feature must
// match the full design.
func TestHierarchicalSliceEquivalence(t *testing.T) {
	src := `
module engine(input clk, input start, input [7:0] work, output busy);
  reg [7:0] cnt = 0;
  always @(posedge clk) begin
    if (start) cnt <= work;
    else if (cnt != 0) cnt <= cnt - 8'd1;
  end
  assign busy = cnt != 0;
endmodule

module hiertop2(input clk, output done);
  reg [31:0] items [0:31];
  reg [5:0] idx = 1;
  reg [1:0] state = 0;
  reg [31:0] acc = 0;
  wire [5:0] n = items[0];
  wire [31:0] item = items[idx];
  wire busy;
  wire kick = state == 0;
  engine u_eng (.clk(clk), .start(kick), .work(item[7:0]), .busy(busy));
  always @(posedge clk) begin
    acc <= acc + item * item;
    case (state)
      0: state <= 1;
      1: if (!busy) begin
        idx <= idx + 6'd1;
        state <= (idx >= n) ? 2'd2 : 2'd0;
      end
    endcase
  end
  assign done = state == 2;
endmodule
`
	m, err := ParseAndElaborate(src)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := instrument.Instrument(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Analysis.WaitStates) != 1 {
		t.Fatalf("wait states = %d, want 1 (multi-exit wait)", len(ins.Analysis.WaitStates))
	}
	keep := make([]int, len(ins.Features))
	for i := range keep {
		keep[i] = i
	}
	sl, err := slice.Slice(ins, keep, slice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sl.ElidedWaits != 1 {
		t.Errorf("elided = %d, want 1", sl.ElidedWaits)
	}
	job := []uint64{4, 30, 0, 17, 9}
	fullSim := rtl.NewSim(ins.M)
	if err := fullSim.LoadMem("items", job); err != nil {
		t.Fatal(err)
	}
	fullT, err := fullSim.Run(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	sliceSim := rtl.NewSim(sl.M)
	if err := sliceSim.LoadMem("items", job); err != nil {
		t.Fatal(err)
	}
	sliceT, err := sliceSim.Run(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if sliceT >= fullT {
		t.Errorf("slice not faster: %d vs %d", sliceT, fullT)
	}
	fullF := ins.ReadFeatures(fullSim)
	sliceF := sl.ReadFeatures(sliceSim)
	for i, k := range sl.Kept {
		if sliceF[i] != fullF[k] {
			t.Errorf("feature %s: slice=%v full=%v", ins.Features[k].Name, sliceF[i], fullF[k])
		}
	}
	// The datapath multiplier (acc) must be gone.
	for i := range sl.M.Nodes {
		if sl.M.Nodes[i].Op == rtl.OpMul {
			t.Error("slice retains datapath multiplier")
		}
	}
}
