package verilog

import (
	"math/rand"
	"testing"

	"repro/internal/accel/sha"
	"repro/internal/analyze"
	"repro/internal/instrument"
	"repro/internal/rtl"
	"repro/internal/slice"
	"repro/internal/testdesigns"
)

// figure8Src is the paper's Figure 8 example written as plain Verilog:
// a control FSM reads a work item (S1), branches on its value into one
// of two computations with different latencies (S2: counter loaded from
// the item; S3: fixed 4 ticks), emits an output (S4), and loops. This
// is third-party-style RTL text — the entire flow (parse, FSM/counter
// detection, instrumentation, slicing) runs on it with no Go-side
// structure.
const figure8Src = `
// Figure 8-style accelerator (MICRO 2015 paper example).
module fig8(input clk, output done);
  reg [2:0] state = 0;      // 0=IDLE 1=S1 2=S2 3=S3 4=S4 5=DONE
  reg [7:0] cnt = 0;        // variable-latency counter for S2
  reg [7:0] fix = 0;        // fixed-latency counter for S3
  reg [7:0] idx = 1;
  reg [15:0] outv = 0;
  reg [15:0] res [0:63];
  reg [15:0] work [0:63];

  wire [15:0] item = work[idx];
  wire [0:0] heavy = item[0];
  wire [7:0] lat = item[8:1];
  wire [7:0] n = work[0];

  always @(posedge clk) begin
    case (state)
      0: state <= 1;
      1: begin
        if (heavy) begin
          cnt <= lat;
          state <= 2;
        end else begin
          fix <= 8'd4;
          state <= 3;
        end
      end
      2: begin
        if (cnt == 0) state <= 4;
        cnt <= (cnt == 0) ? cnt : cnt - 8'd1;
      end
      3: begin
        if (fix == 0) state <= 4;
        fix <= (fix == 0) ? fix : fix - 8'd1;
      end
      4: begin
        res[idx] <= outv;
        idx <= idx + 8'd1;
        state <= (idx >= n) ? 3'd5 : 3'd1;
      end
    endcase
    outv <= outv + item * item;
  end
  assign done = state == 5;
endmodule
`

// fig8Job encodes a work list for the Figure 8 module.
func fig8Job(items []uint16) []uint64 {
	mem := make([]uint64, 1+len(items))
	mem[0] = uint64(len(items))
	for i, it := range items {
		mem[1+i] = uint64(it)
	}
	return mem
}

func fig8Item(heavy bool, lat uint8) uint16 {
	v := uint16(lat) << 1
	if heavy {
		v |= 1
	}
	return v
}

func TestFigure8FullFlow(t *testing.T) {
	m, err := ParseAndElaborate(figure8Src)
	if err != nil {
		t.Fatal(err)
	}
	// Detection: the case-statement FSM and both counters must be found
	// in the *parsed* netlist.
	a := analyze.Analyze(m)
	var fsm *analyze.FSM
	for i := range a.FSMs {
		if a.FSMs[i].Name == "state" {
			fsm = &a.FSMs[i]
		}
	}
	if fsm == nil {
		t.Fatalf("case-statement FSM not detected (found %d FSMs)", len(a.FSMs))
	}
	if len(fsm.States) != 6 {
		t.Errorf("states = %v, want 6", fsm.States)
	}
	arcs := map[[2]uint64]bool{}
	for _, tr := range fsm.Transitions {
		arcs[[2]uint64{tr.From, tr.To}] = true
	}
	for _, want := range [][2]uint64{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 1}, {4, 5}} {
		if !arcs[want] {
			t.Errorf("missing transition %d->%d", want[0], want[1])
		}
	}
	counters := 0
	for _, c := range a.Counters {
		if (c.Name == "cnt" || c.Name == "fix") && c.Dir == analyze.Down && len(c.Loads) == 1 {
			counters++
		}
	}
	if counters != 2 {
		t.Errorf("latency counters detected = %d, want 2", counters)
	}
	if len(a.WaitStates) != 2 {
		t.Errorf("wait states = %d, want 2", len(a.WaitStates))
	}

	// Instrument and verify the linear-time hypothesis on random jobs.
	ins, err := instrument.Instrument(m)
	if err != nil {
		t.Fatal(err)
	}
	sim := rtl.NewSim(ins.M)
	rng := rand.New(rand.NewSource(4))
	idxOf := func(name string) int {
		for i, f := range ins.Features {
			if f.Name == name {
				return i
			}
		}
		t.Fatalf("feature %s missing in %v", name, ins.Names())
		return -1
	}
	for trial := 0; trial < 10; trial++ {
		items := make([]uint16, 1+rng.Intn(12))
		for i := range items {
			items[i] = fig8Item(rng.Intn(2) == 0, uint8(rng.Intn(30)))
		}
		sim.Reset()
		if err := sim.LoadMem("work", fig8Job(items)); err != nil {
			t.Fatal(err)
		}
		ticks, err := sim.Run(1 << 16)
		if err != nil {
			t.Fatal(err)
		}
		f := ins.ReadFeatures(sim)
		nHeavy := f[idxOf("stc:state:1->2")]
		nFix := f[idxOf("stc:state:1->3")]
		latSum := f[idxOf("aiv:cnt")]
		// Per item: S1(1) + wait(lat or 4, +1 exit) + S4(1); plus IDLE
		// and the final DONE-observing tick.
		want := 2 + 3*(nHeavy+nFix) + latSum + 4*nFix
		if float64(ticks) != want {
			t.Errorf("trial %d: ticks=%d, feature model=%v", trial, ticks, want)
		}
	}

	// Slice: keep the informative features, check equivalence + speedup.
	keep := []int{idxOf("stc:state:1->2"), idxOf("stc:state:1->3"), idxOf("aiv:cnt")}
	sl, err := slice.Slice(ins, keep, slice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sliceSim := rtl.NewSim(sl.M)
	items := []uint16{fig8Item(true, 25), fig8Item(false, 0), fig8Item(true, 19)}
	sim.Reset()
	if err := sim.LoadMem("work", fig8Job(items)); err != nil {
		t.Fatal(err)
	}
	fullT, err := sim.Run(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := sliceSim.LoadMem("work", fig8Job(items)); err != nil {
		t.Fatal(err)
	}
	sliceT, err := sliceSim.Run(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if sliceT >= fullT {
		t.Errorf("slice not faster: %d vs %d ticks", sliceT, fullT)
	}
	fullF := ins.ReadFeatures(sim)
	sliceF := sl.ReadFeatures(sliceSim)
	for i, k := range sl.Kept {
		if sliceF[i] != fullF[k] {
			t.Errorf("feature %s: slice=%v full=%v", ins.Features[k].Name, sliceF[i], fullF[k])
		}
	}
	// The multiplier datapath (outv) must be sliced away.
	for i := range sl.M.Nodes {
		if sl.M.Nodes[i].Op == rtl.OpMul {
			t.Error("slice retains the datapath multiplier")
		}
	}
}

// roundTrip emits a module as Verilog, re-parses it, and co-simulates
// both on the given memory images, comparing tick counts and all
// register values at completion.
func roundTrip(t *testing.T, m *rtl.Module, mems map[string][]uint64, maxTicks uint64) {
	t.Helper()
	src := Emit(m)
	m2, err := ParseAndElaborate(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, src)
	}
	s1, s2 := rtl.NewSim(m), rtl.NewSim(m2)
	for name, data := range mems {
		if err := s1.LoadMem(name, data); err != nil {
			t.Fatal(err)
		}
		if err := s2.LoadMem(name, data); err != nil {
			t.Fatalf("emitted module lost memory %s: %v", name, err)
		}
	}
	t1, err := s1.Run(maxTicks)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s2.Run(maxTicks)
	if err != nil {
		t.Fatalf("re-parsed module did not finish: %v", err)
	}
	if t1 != t2 {
		t.Fatalf("tick mismatch after round trip: %d vs %d", t1, t2)
	}
	if len(m.Regs) != len(m2.Regs) {
		t.Fatalf("register count changed: %d vs %d", len(m.Regs), len(m2.Regs))
	}
	for ri := range m.Regs {
		if s1.RegValue(ri) != s2.RegValue(ri) {
			t.Errorf("reg %s: %d vs %d after round trip",
				m.Regs[ri].Name, s1.RegValue(ri), s2.RegValue(ri))
		}
	}
}

func TestRoundTripToy(t *testing.T) {
	toy := testdesigns.Toy()
	items := []uint64{
		testdesigns.ToyItem(false, 0),
		testdesigns.ToyItem(true, 17),
		testdesigns.ToyItem(true, 3),
	}
	roundTrip(t, toy.M, map[string][]uint64{"in": testdesigns.ToyJob(items)}, 1<<16)
}

func TestRoundTripSHA(t *testing.T) {
	// The SHA-256 accelerator exercises ROMs (round constants), wide
	// datapaths, and multi-block control through the round trip.
	m := sha.Build()
	payload := []byte("round trip me through verilog and back")
	words := sha.Pad(payload)
	in := make([]uint64, 1+len(words))
	in[0] = uint64(len(words) / 16)
	copy(in[1:], words)
	roundTrip(t, m, map[string][]uint64{"in": in}, 1<<16)
}

func TestEmitIsParseable(t *testing.T) {
	// Every benchmark netlist's emission must at least parse and
	// validate (full co-simulation for all seven would be slow here;
	// the toy and sha round trips check behaviour).
	toy := testdesigns.Toy()
	src := Emit(toy.M)
	m2, err := ParseAndElaborate(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}
