package workload

import (
	"math"
	"testing"
)

func nondecreasing(t *testing.T, a []float64) {
	t.Helper()
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not nondecreasing at %d: %g < %g", i, a[i], a[i-1])
		}
	}
}

func TestPeriodicArrivals(t *testing.T) {
	a := PeriodicArrivals(5, 16.7e-3)
	if len(a) != 5 {
		t.Fatalf("len = %d", len(a))
	}
	nondecreasing(t, a)
	for i, v := range a {
		if want := float64(i) * 16.7e-3; math.Abs(v-want) > 1e-15 {
			t.Errorf("arrival %d = %g, want %g", i, v, want)
		}
	}
}

func TestPoissonArrivalsDeterministicAndCalibrated(t *testing.T) {
	const n, rate = 4000, 60.0
	a := PoissonArrivals(n, rate, 7)
	b := PoissonArrivals(n, rate, 7)
	nondecreasing(t, a)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if c := PoissonArrivals(n, rate, 8); c[n-1] == a[n-1] {
		t.Error("different seeds produced identical streams")
	}
	// Mean inter-arrival gap should be close to 1/rate.
	mean := a[n-1] / float64(n)
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Errorf("mean gap %g, want ~%g", mean, 1/rate)
	}
}

// TestDegenerateParameters pins the documented invariant for every
// generator: exactly max(n, 0) finite, nonnegative, nondecreasing
// timestamps no matter how broken the parameters are. PoissonArrivals
// used to divide by the rate unguarded, so rate 0 produced +Inf
// arrivals and a negative rate produced decreasing (time-traveling)
// streams.
func TestDegenerateParameters(t *testing.T) {
	check := func(name string, a []float64, wantLen int) {
		t.Helper()
		if len(a) != wantLen {
			t.Fatalf("%s: len = %d, want %d", name, len(a), wantLen)
		}
		nondecreasing(t, a)
		for i, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("%s: arrival %d = %g", name, i, v)
			}
		}
	}
	for _, rate := range []float64{0, -3, math.NaN(), math.Inf(-1)} {
		a := PoissonArrivals(10, rate, 1)
		check("poisson", a, 10)
		for i, v := range a {
			if v != 0 {
				t.Fatalf("rate %g: arrival %d = %g, want 0 (burst at t=0)", rate, i, v)
			}
		}
	}
	// A subnormal positive rate overflows individual gaps; timestamps
	// must saturate at MaxFloat64 instead of going +Inf.
	check("poisson-tiny", PoissonArrivals(10, 1e-320, 1), 10)

	for _, period := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		check("periodic", PeriodicArrivals(6, period), 6)
		check("bursty", BurstyArrivals(6, 2, period), 6)
	}

	for _, n := range []int{0, -5} {
		if a := PeriodicArrivals(n, 1); a != nil {
			t.Errorf("PeriodicArrivals(%d) = %v, want nil", n, a)
		}
		if a := PoissonArrivals(n, 1, 1); a != nil {
			t.Errorf("PoissonArrivals(%d) = %v, want nil", n, a)
		}
		if a := BurstyArrivals(n, 2, 1); a != nil {
			t.Errorf("BurstyArrivals(%d) = %v, want nil", n, a)
		}
	}
}

func TestBurstyArrivals(t *testing.T) {
	a := BurstyArrivals(9, 3, 1.0)
	nondecreasing(t, a)
	want := []float64{0, 0, 0, 1, 1, 1, 2, 2, 2}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", a, want)
		}
	}
	// Degenerate burst sizes clamp to 1 (pure periodic).
	b := BurstyArrivals(3, 0, 2.0)
	for i, v := range []float64{0, 2, 4} {
		if b[i] != v {
			t.Fatalf("burst=0 arrivals = %v", b)
		}
	}
}
