package workload

import (
	"math"
	"math/rand"
)

// Arrival-stream generators for the online serving layer (package
// serve): a job stream is a job list plus a nondecreasing slice of
// arrival timestamps in seconds. Real deployments see two canonical
// shapes — frame-periodic streams (a 60 fps decoder delivers one job
// per 16.7 ms slot) and memoryless request traffic (independent
// browsing/crypto requests) — plus recorded traces replayed verbatim.
//
// Invariant (all generators): the returned slice has exactly max(n, 0)
// elements, every timestamp is finite and >= 0, and timestamps are
// nondecreasing — for any parameters, including degenerate ones
// (negative counts, zero/negative/NaN rates or periods). Degenerate
// spacings clamp to zero, reading the stream as one simultaneous burst
// at t=0 rather than violating the contract with +Inf or time travel.

// sanePeriod clamps a degenerate (negative, NaN, or +Inf) spacing to 0.
func sanePeriod(period float64) float64 {
	if !(period > 0) || math.IsInf(period, 1) {
		return 0
	}
	return period
}

// PeriodicArrivals returns n arrivals spaced exactly period seconds
// apart starting at 0: the frame-driven pipeline of §2.1, where every
// job's deadline is the next job's arrival.
func PeriodicArrivals(n int, period float64) []float64 {
	if n <= 0 {
		return nil
	}
	period = sanePeriod(period)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * period
	}
	return out
}

// PoissonArrivals returns n arrivals of a Poisson process with the
// given mean rate (jobs per second): independent exponential
// inter-arrival gaps, the standard model for open-loop request traffic.
// The stream is deterministic in the seed.
//
// A rate that is zero, negative, NaN, or subnormal enough to overflow a
// gap does not produce +Inf or decreasing timestamps: invalid rates
// collapse the stream to a burst at t=0, and any overflowing gap
// saturates at MaxFloat64.
func PoissonArrivals(n int, rate float64, seed int64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if !(rate > 0) { // rejects NaN, zero, and negative rates
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	t := 0.0
	for i := range out {
		gap := rng.ExpFloat64() / rate
		if t += gap; !(t <= math.MaxFloat64) { // overflow from a subnormal rate
			t = math.MaxFloat64
		}
		out[i] = t
	}
	return out
}

// BurstyArrivals returns n arrivals in bursts: groups of burst jobs
// arrive back-to-back (zero gap) at period-spaced group boundaries.
// This is the adversarial shape for an online governor — each burst
// head has a full budget while the tail inherits whatever queue wait
// the head left behind — and is what the serving layer's degraded path
// exists for.
func BurstyArrivals(n, burst int, period float64) []float64 {
	if n <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	period = sanePeriod(period)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i/burst) * period
	}
	return out
}
