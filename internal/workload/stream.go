package workload

import "math/rand"

// Arrival-stream generators for the online serving layer (package
// serve): a job stream is a job list plus a nondecreasing slice of
// arrival timestamps in seconds. Real deployments see two canonical
// shapes — frame-periodic streams (a 60 fps decoder delivers one job
// per 16.7 ms slot) and memoryless request traffic (independent
// browsing/crypto requests) — plus recorded traces replayed verbatim.

// PeriodicArrivals returns n arrivals spaced exactly period seconds
// apart starting at 0: the frame-driven pipeline of §2.1, where every
// job's deadline is the next job's arrival.
func PeriodicArrivals(n int, period float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * period
	}
	return out
}

// PoissonArrivals returns n arrivals of a Poisson process with the
// given mean rate (jobs per second): independent exponential
// inter-arrival gaps, the standard model for open-loop request traffic.
// The stream is deterministic in the seed.
func PoissonArrivals(n int, rate float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / rate
		out[i] = t
	}
	return out
}

// BurstyArrivals returns n arrivals in bursts: groups of burst jobs
// arrive back-to-back (zero gap) at period-spaced group boundaries.
// This is the adversarial shape for an online governor — each burst
// head has a full budget while the tail inherits whatever queue wait
// the head left behind — and is what the serving layer's degraded path
// exists for.
func BurstyArrivals(n, burst int, period float64) []float64 {
	if burst < 1 {
		burst = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i/burst) * period
	}
	return out
}
