// Package workload generates the seeded synthetic job streams that
// substitute for the paper's proprietary inputs (video clips, image
// sets, data buffers, particle traces — Table 3). The generators aim to
// reproduce the *statistical structure* that matters to a DVFS
// controller: per-job execution-cost distributions, job-to-job
// autocorrelation, periodic structure (GOPs), and occasional abrupt
// spikes that defeat reactive prediction (Figures 2 and 3).
package workload

import "math/rand"

// MBStat describes one macroblock of a synthetic video frame.
type MBStat struct {
	// Intra marks intra-predicted macroblocks (scene changes, I-frames).
	Intra bool
	// Skip marks skipped macroblocks (near-zero cost).
	Skip bool
	// Coeffs is the number of non-zero transform coefficients (0..63).
	Coeffs int
	// QPel marks inter blocks using quarter-pixel motion vectors, which
	// carry the long-latency interpolation the paper's case study found
	// hand-built predictors missed (§3.7).
	QPel bool
	// MVs is the number of motion vectors (1..4) for inter blocks.
	MVs int
}

// FrameStats is the per-macroblock content of one frame.
type FrameStats struct {
	MBs []MBStat
	// IFrame marks intra-coded frames (GOP heads and scene changes).
	IFrame bool
}

// VideoProfile parameterizes a synthetic clip. The three stock profiles
// mirror the character of the paper's clips: a static scene, a medium-
// motion scene, and a high-motion scene.
type VideoProfile struct {
	// Name labels the clip.
	Name string
	// Motion in 0..1 scales inter-prediction cost (more MVs, more qpel).
	Motion float64
	// Detail in 0..1 scales residue richness (more coefficients).
	Detail float64
	// SceneChange is the per-frame probability of a full intra frame.
	SceneChange float64
	// GOP is the intra-frame period (0 disables periodic I-frames).
	GOP int
}

// Stock clip profiles, loosely matching the paper's three test clips.
var (
	ClipNews       = VideoProfile{Name: "news", Motion: 0.15, Detail: 0.35, SceneChange: 0.01, GOP: 30}
	ClipForeman    = VideoProfile{Name: "foreman", Motion: 0.55, Detail: 0.55, SceneChange: 0.02, GOP: 30}
	ClipCoastguard = VideoProfile{Name: "coastguard", Motion: 0.8, Detail: 0.7, SceneChange: 0.015, GOP: 30}
)

// Video synthesizes a clip of frames frames with mbs macroblocks each.
// Frame-to-frame complexity follows an AR(1) random walk around the
// profile's operating point, punctuated by I-frames.
func Video(p VideoProfile, frames, mbs int, seed int64) []FrameStats {
	rng := rand.New(rand.NewSource(seed))
	out := make([]FrameStats, frames)
	// Slowly varying activity level in 0..1.
	act := 0.5
	for fi := range out {
		act = 0.9*act + 0.1*rng.Float64()
		iframe := (p.GOP > 0 && fi%p.GOP == 0) || rng.Float64() < p.SceneChange
		f := FrameStats{MBs: make([]MBStat, mbs), IFrame: iframe}
		for mi := range f.MBs {
			mb := &f.MBs[mi]
			detail := clamp01(p.Detail*(0.6+0.8*act) + 0.12*rng.NormFloat64())
			if iframe {
				mb.Intra = true
				mb.Coeffs = quantize63(0.35 + 0.65*detail*rng.Float64())
				continue
			}
			switch {
			case rng.Float64() < 0.18*(1-p.Motion):
				mb.Skip = true
			case rng.Float64() < 0.25:
				mb.Intra = true
				mb.Coeffs = quantize63(0.2 + 0.6*detail*rng.Float64())
			default:
				mb.MVs = 1 + rng.Intn(1+int(3*p.Motion*rng.Float64()))
				mb.QPel = rng.Float64() < 0.35*p.Motion*(0.5+act)
				mb.Coeffs = quantize63(0.1 + 0.5*detail*rng.Float64())
			}
		}
		out[fi] = f
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func quantize63(v float64) int {
	c := int(v * 63)
	if c < 0 {
		c = 0
	}
	if c > 63 {
		c = 63
	}
	return c
}

// Image describes one synthetic image job for the JPEG accelerators.
type Image struct {
	// Blocks is the number of 8×8 blocks.
	Blocks int
	// Complexity in 0..1 scales per-block coefficient counts.
	Complexity float64
	// Class is the size bucket ("small", "medium", "large").
	Class string
	// BlockCoeffs lists per-block non-zero coefficient counts (0..63).
	BlockCoeffs []int
}

// Images generates n images with a realistic size mixture: mostly small
// and medium UI/web assets plus a heavy tail of large photos — this is
// what makes the JPEG execution-time range of Table 4 span 16×. The
// browsing scenario means consecutive images are independent (§2.4's
// argument against reactive control for JPEG).
func Images(n int, maxBlocks int, seed int64) []Image {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Image, n)
	for i := range out {
		var blocks int
		var class string
		switch r := rng.Float64(); {
		case r < 0.4:
			// Thumbnails and icons: small, but never below the codec's
			// practical minimum (headers dominate truly tiny images).
			class = "small"
			blocks = maxBlocks/12 + rng.Intn(maxBlocks/6)
		case r < 0.8:
			class = "medium"
			blocks = maxBlocks/4 + rng.Intn(maxBlocks/3)
		default:
			class = "large"
			blocks = maxBlocks/2 + rng.Intn(maxBlocks/2)
		}
		cx := clamp01(0.25 + 0.6*rng.Float64())
		img := Image{Blocks: blocks, Complexity: cx, Class: class}
		img.BlockCoeffs = make([]int, blocks)
		for b := range img.BlockCoeffs {
			img.BlockCoeffs[b] = quantize63(cx * rng.Float64())
		}
		out[i] = img
	}
	return out
}

// DataPiece is one buffer for the crypto/hash accelerators.
type DataPiece struct {
	// Bytes is the buffer length.
	Bytes int
	// Class is the size bucket.
	Class string
	// Payload is the actual data (needed by the real AES/SHA datapaths).
	Payload []byte
}

// DataPieces generates n buffers with a log-ish size mixture between
// minBytes and maxBytes.
func DataPieces(n, minBytes, maxBytes int, seed int64) []DataPiece {
	rng := rand.New(rand.NewSource(seed))
	out := make([]DataPiece, n)
	span := maxBytes - minBytes
	for i := range out {
		// Squaring a uniform variate skews toward small sizes while
		// keeping the max reachable.
		f := rng.Float64()
		f = f * f
		size := minBytes + int(f*float64(span))
		class := "small"
		switch {
		case size > minBytes+span*2/3:
			class = "large"
		case size > minBytes+span/3:
			class = "medium"
		}
		p := DataPiece{Bytes: size, Class: class, Payload: make([]byte, size)}
		rng.Read(p.Payload)
		out[i] = p
	}
	return out
}

// MDStep describes one molecular-dynamics timestep: the per-particle
// neighbour counts that drive the force-pipeline latency.
type MDStep struct {
	Neighbors []int
}

// MDSteps simulates a particle system whose density slowly evolves:
// neighbour counts per particle follow the local density with noise.
// Occasional "collision events" compact the system and spike the counts,
// mirroring the position-change-driven variation of Table 3.
func MDSteps(steps, particles, maxNeighbors int, seed int64) []MDStep {
	rng := rand.New(rand.NewSource(seed))
	out := make([]MDStep, steps)
	density := 0.35
	for si := range out {
		// Mean-reverting walk around a moderate density, with rare
		// compaction events that pack the system near its neighbour-list
		// capacity. Fully packed steps run close to the frame deadline —
		// the budget-exhaustion corner of §4.3.
		density = clamp01(density + 0.15*(0.35-density) + 0.05*rng.NormFloat64())
		if rng.Float64() < 0.025 {
			density = clamp01(density + 0.5 + 0.5*rng.Float64())
		}
		st := MDStep{Neighbors: make([]int, particles)}
		for pi := range st.Neighbors {
			mean := density * float64(maxNeighbors)
			// Per-particle spread shrinks as the system packs (every
			// cell is full), which is also what keeps the densest steps
			// tightly clustered in time.
			sigma := 0.25*mean*(1-density) + 1
			v := int(mean + sigma*rng.NormFloat64())
			if v < 1 {
				v = 1
			}
			if v > maxNeighbors {
				v = maxNeighbors
			}
			st.Neighbors[pi] = v
		}
		out[si] = st
	}
	return out
}

// StencilImage is one image-filtering job: dimensions in tiles.
type StencilImage struct {
	Rows, Cols int
	Class      string
}

// StencilImages generates n images over a set of common tile geometries.
func StencilImages(n, maxRows, maxCols int, seed int64) []StencilImage {
	rng := rand.New(rand.NewSource(seed))
	out := make([]StencilImage, n)
	for i := range out {
		var r, c int
		var class string
		switch x := rng.Float64(); {
		case x < 0.35:
			class = "small"
			r, c = 8+rng.Intn(maxRows/4), 10+rng.Intn(maxCols/4)
		case x < 0.8:
			class = "medium"
			r, c = maxRows/4+rng.Intn(maxRows/3), maxCols/4+rng.Intn(maxCols/3)
		default:
			class = "large"
			// Cameras emit standard full-resolution frames: a tenth of
			// the large images are exactly the sensor's maximum, the
			// rest sit just below it. Full-frame jobs finish barely
			// inside the deadline — before predictor overheads (§4.3).
			if rng.Float64() < 0.1 {
				r, c = maxRows, maxCols
			} else {
				r, c = maxRows-1-rng.Intn(8), maxCols-1-rng.Intn(8)
			}
		}
		if r < 1 {
			r = 1
		}
		if c < 1 {
			c = 1
		}
		out[i] = StencilImage{Rows: r, Cols: c, Class: class}
	}
	return out
}
