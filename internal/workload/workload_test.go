package workload

import (
	"testing"
	"testing/quick"
)

func TestVideoDeterministic(t *testing.T) {
	a := Video(ClipForeman, 50, 24, 7)
	b := Video(ClipForeman, 50, 24, 7)
	for i := range a {
		if a[i].IFrame != b[i].IFrame || len(a[i].MBs) != len(b[i].MBs) {
			t.Fatalf("frame %d differs between identical seeds", i)
		}
		for j := range a[i].MBs {
			if a[i].MBs[j] != b[i].MBs[j] {
				t.Fatalf("frame %d mb %d differs", i, j)
			}
		}
	}
	c := Video(ClipForeman, 50, 24, 8)
	same := true
	for i := range a {
		for j := range a[i].MBs {
			if a[i].MBs[j] != c[i].MBs[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical clips")
	}
}

func TestVideoGOPStructure(t *testing.T) {
	frames := Video(ClipNews, 90, 24, 3)
	for i := 0; i < 90; i += 30 {
		if !frames[i].IFrame {
			t.Errorf("frame %d is not an I-frame (GOP=30)", i)
		}
	}
	iCount := 0
	for _, f := range frames {
		if f.IFrame {
			iCount++
		}
	}
	if iCount < 3 || iCount > 20 {
		t.Errorf("I-frames = %d of 90, implausible", iCount)
	}
}

func TestVideoIFramesAllIntra(t *testing.T) {
	frames := Video(ClipCoastguard, 60, 24, 4)
	for fi, f := range frames {
		if !f.IFrame {
			continue
		}
		for mi, mb := range f.MBs {
			if !mb.Intra || mb.Skip {
				t.Fatalf("frame %d mb %d of an I-frame is not intra", fi, mi)
			}
		}
	}
}

func TestVideoMBFieldsInRange(t *testing.T) {
	f := func(seed int64) bool {
		frames := Video(ClipForeman, 10, 24, seed)
		for _, fr := range frames {
			for _, mb := range fr.MBs {
				if mb.Coeffs < 0 || mb.Coeffs > 63 {
					return false
				}
				if mb.MVs < 0 || mb.MVs > 4 {
					return false
				}
				if mb.Skip && mb.Intra {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMotionIncreasesInterCost(t *testing.T) {
	calm := Video(ClipNews, 100, 24, 5)
	busy := Video(ClipCoastguard, 100, 24, 5)
	qpel := func(frames []FrameStats) (n int) {
		for _, f := range frames {
			for _, mb := range f.MBs {
				if mb.QPel {
					n++
				}
			}
		}
		return
	}
	if qpel(busy) <= qpel(calm) {
		t.Errorf("high-motion clip has fewer qpel blocks (%d vs %d)", qpel(busy), qpel(calm))
	}
}

func TestImagesClassesAndBounds(t *testing.T) {
	imgs := Images(200, 320, 11)
	classes := map[string]int{}
	for _, img := range imgs {
		classes[img.Class]++
		if img.Blocks < 1 || img.Blocks > 320 {
			t.Fatalf("blocks = %d out of range", img.Blocks)
		}
		if len(img.BlockCoeffs) != img.Blocks {
			t.Fatal("coeff list length mismatch")
		}
		for _, c := range img.BlockCoeffs {
			if c < 0 || c > 63 {
				t.Fatalf("coeff %d out of range", c)
			}
		}
	}
	if classes["small"] == 0 || classes["medium"] == 0 || classes["large"] == 0 {
		t.Errorf("class mix = %v", classes)
	}
}

func TestImagesIndependence(t *testing.T) {
	// Consecutive images must be uncorrelated in size (the JPEG/browser
	// argument of §2.4): adjacent size deltas are as large as random
	// pair deltas.
	imgs := Images(300, 320, 13)
	var adj, far float64
	for i := 1; i < len(imgs); i++ {
		d := float64(imgs[i].Blocks - imgs[i-1].Blocks)
		if d < 0 {
			d = -d
		}
		adj += d
		d2 := float64(imgs[i].Blocks - imgs[(i*53)%len(imgs)].Blocks)
		if d2 < 0 {
			d2 = -d2
		}
		far += d2
	}
	if adj < 0.6*far {
		t.Errorf("image sizes look autocorrelated: adjacent %.0f vs random %.0f", adj, far)
	}
}

func TestDataPiecesBounds(t *testing.T) {
	pieces := DataPieces(150, 100, 2000, 17)
	for _, p := range pieces {
		if p.Bytes < 100 || p.Bytes > 2000 {
			t.Fatalf("size %d out of bounds", p.Bytes)
		}
		if len(p.Payload) != p.Bytes {
			t.Fatal("payload length mismatch")
		}
	}
	// Skewed toward small sizes: median below the midpoint.
	sizes := make([]int, len(pieces))
	for i, p := range pieces {
		sizes[i] = p.Bytes
	}
	below := 0
	for _, s := range sizes {
		if s < 1050 {
			below++
		}
	}
	if below < len(sizes)/2 {
		t.Errorf("size distribution not skewed small: %d/%d below midpoint", below, len(sizes))
	}
}

func TestMDStepsBoundsAndSpikes(t *testing.T) {
	steps := MDSteps(400, 48, 72, 19)
	maxAvg := 0.0
	for _, st := range steps {
		if len(st.Neighbors) != 48 {
			t.Fatal("particle count wrong")
		}
		sum := 0
		for _, n := range st.Neighbors {
			if n < 1 || n > 72 {
				t.Fatalf("neighbors %d out of bounds", n)
			}
			sum += n
		}
		if avg := float64(sum) / 48; avg > maxAvg {
			maxAvg = avg
		}
	}
	// Compaction events must push the system near capacity sometimes.
	if maxAvg < 65 {
		t.Errorf("max average neighbours %.1f; compaction spikes missing", maxAvg)
	}
}

func TestStencilImagesBounds(t *testing.T) {
	imgs := StencilImages(300, 46, 46, 23)
	fullFrames := 0
	for _, img := range imgs {
		if img.Rows < 1 || img.Rows > 46 || img.Cols < 1 || img.Cols > 46 {
			t.Fatalf("geometry %dx%d out of bounds", img.Rows, img.Cols)
		}
		if img.Rows == 46 && img.Cols == 46 {
			fullFrames++
		}
	}
	if fullFrames == 0 {
		t.Error("no full-resolution frames generated (miss-band jobs missing)")
	}
}

func TestClamp01AndQuantize(t *testing.T) {
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 wrong")
	}
	if quantize63(-0.5) != 0 || quantize63(2) != 63 {
		t.Error("quantize63 bounds wrong")
	}
}
