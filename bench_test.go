// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation, one testing.B benchmark per
// artifact, plus ablation benchmarks for the design decisions called
// out in DESIGN.md.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the headline quantities of its artifact as
// custom metrics (energy percentages, miss rates, overheads), so the
// bench output doubles as a compact reproduction record; the full
// paper-style tables come from cmd/dvfsim.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/instrument"
	"repro/internal/model"
	"repro/internal/rtl"
	"repro/internal/slice"
	"repro/internal/suite"
)

var (
	benchLabOnce sync.Once
	benchLab     *exp.Lab
	benchLabErr  error
)

// lab trains all seven benchmarks once (full workloads) and is shared
// by every benchmark in this file; experiments replay cached traces.
func lab(b *testing.B) *exp.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab = exp.NewLab(42)
		_, benchLabErr = benchLab.All()
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

// runExp executes one experiment per iteration and returns the last
// table for metric extraction.
func runExp(b *testing.B, id string) *exp.Table {
	l := lab(b)
	b.ResetTimer()
	var t *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = exp.Run(l, id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return t
}

func BenchmarkTable3Workloads(b *testing.B) {
	t := runExp(b, "table3")
	b.ReportMetric(float64(len(t.Rows)), "benchmarks")
}

func BenchmarkTable4Implementation(b *testing.B) {
	t := runExp(b, "table4")
	b.ReportMetric(float64(len(t.Rows)), "benchmarks")
}

func BenchmarkFigure2H264Variation(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r *exp.Figure2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Figure2(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	minV, maxV := 1e9, 0.0
	for _, clip := range r.Clips {
		for _, v := range clip.Values {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	b.ReportMetric(maxV-minV, "spread_ms")
}

func BenchmarkFigure3PIDLag(b *testing.B) {
	runExp(b, "fig3")
}

func BenchmarkFigure10PredictionError(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var rows []exp.Figure10Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, _, err = exp.Figure10(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worstUnder float64
	for _, r := range rows {
		if r.WorstUnder < worstUnder {
			worstUnder = r.WorstUnder
		}
	}
	b.ReportMetric(-100*worstUnder, "worst_under_pct")
}

func BenchmarkFigure11EnergyMisses(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r *exp.Figure11Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Figure11(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100-r.AvgNormalized["prediction"], "savings_pct")
	b.ReportMetric(100*r.AvgMiss["prediction"], "miss_pct")
	b.ReportMetric(100-r.AvgNormalized["pid"], "pid_savings_pct")
	b.ReportMetric(100*r.AvgMiss["pid"], "pid_miss_pct")
}

func BenchmarkFigure12SliceOverhead(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var rows []exp.OverheadRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, _, err = exp.Figure12(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	var a, e, t float64
	for _, r := range rows {
		a += r.AreaPct
		e += r.EnergyPct
		t += r.TimePct
	}
	n := float64(len(rows))
	b.ReportMetric(a/n, "area_pct")
	b.ReportMetric(e/n, "energy_pct")
	b.ReportMetric(t/n, "time_pct")
}

func BenchmarkFigure13Oracle(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r *exp.Figure13Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Figure13(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, row := range r.Rows {
		sums[row.Scheme] += row.Normalized
		counts[row.Scheme]++
	}
	gap := sums["prediction w/o overhead"]/counts["prediction w/o overhead"] -
		sums["oracle"]/counts["oracle"]
	b.ReportMetric(gap, "oracle_gap_pct")
}

func BenchmarkFigure14Boost(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r *exp.Figure14Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Figure14(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	var boostMiss float64
	for _, row := range r.Rows {
		if row.Scheme == "prediction+boost" {
			boostMiss += row.MissRate
		}
	}
	b.ReportMetric(100*boostMiss, "boost_miss_pct")
}

func BenchmarkFigure15DeadlineSweep(b *testing.B) {
	runExp(b, "fig15")
}

func BenchmarkFigure16FPGA(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r *exp.Figure11Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.Figure16(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100-r.AvgNormalized["prediction"], "fpga_savings_pct")
}

func BenchmarkFigure17FPGASlice(b *testing.B) {
	runExp(b, "fig17")
}

func BenchmarkFigure18HLS(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var rows []exp.HLSRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, _, err = exp.Figure18(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	var rtlMiss, hlsMiss float64
	for _, r := range rows {
		if r.Level == "rtl" {
			rtlMiss += r.MissRate
		} else {
			hlsMiss += r.MissRate
		}
	}
	b.ReportMetric(100*rtlMiss/2, "rtl_miss_pct")
	b.ReportMetric(100*hlsMiss/2, "hls_miss_pct")
}

func BenchmarkFigure19HLSOverhead(b *testing.B) {
	runExp(b, "fig19")
}

func BenchmarkCaseStudyH264(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	var r *exp.CaseStudyResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.CaseStudy(l)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.FeaturesKept), "kept_features")
	b.ReportMetric(r.SliceAreaPct, "slice_area_pct")
	b.ReportMetric(r.SliceEnergyPct, "slice_energy_pct")
}

// ---------------------------------------------------------------------
// Extension experiments (paper §2.4, §3, §4.5, §5.1).

func BenchmarkExtGovernors(b *testing.B) {
	runExp(b, "ext-governors")
}

func BenchmarkExtSoftwarePredictor(b *testing.B) {
	runExp(b, "ext-swpredict")
}

func BenchmarkExtReconfig(b *testing.B) {
	runExp(b, "ext-reconfig")
}

func BenchmarkExtSwitchSweep(b *testing.B) {
	runExp(b, "ext-switch")
}

func BenchmarkExtMarginSweep(b *testing.B) {
	runExp(b, "ext-margin")
}

// ---------------------------------------------------------------------
// Ablation benchmarks for DESIGN.md's called-out decisions.

// BenchmarkAblationSymmetricLoss trains the md predictor with the
// symmetric least-squares objective (α=1) instead of the paper's
// asymmetric one, showing the under-prediction fraction the asymmetry
// removes.
func BenchmarkAblationSymmetricLoss(b *testing.B) {
	spec, err := suite.ByName("djpeg")
	if err != nil {
		b.Fatal(err)
	}
	var under, underAsym float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sym, err := core.Train(spec, core.Options{Seed: 42,
			Model: model.Config{Alpha: 1, MaxIter: 4000}})
		if err != nil {
			b.Fatal(err)
		}
		asym, err := core.Train(spec, core.Options{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		eSym, err := sym.EvaluateTest(spec.TestJobs(43))
		if err != nil {
			b.Fatal(err)
		}
		eAsym, err := asym.EvaluateTest(spec.TestJobs(43))
		if err != nil {
			b.Fatal(err)
		}
		under = eSym.UnderFrac
		underAsym = eAsym.UnderFrac
	}
	b.ReportMetric(100*under, "sym_under_pct")
	b.ReportMetric(100*underAsym, "asym_under_pct")
}

// BenchmarkAblationNoElision slices without wait-state elision: the
// slice computes identical features but takes as long as the job,
// destroying the time budget (the reason §3.5 needs the optimization).
func BenchmarkAblationNoElision(b *testing.B) {
	spec, err := suite.ByName("md")
	if err != nil {
		b.Fatal(err)
	}
	var ratioElided, ratioPlain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := spec.Build()
		ins, err := instrument.Instrument(m)
		if err != nil {
			b.Fatal(err)
		}
		keep := []int{0, 1, 2}
		elided, err := slice.Slice(ins, keep, slice.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		plain, err := slice.Slice(ins, keep, slice.Options{})
		if err != nil {
			b.Fatal(err)
		}
		job := spec.TestJobs(7)[0]
		full := rtl.NewSim(ins.M)
		fullT := runJob(b, full, job.Mems, spec.MaxTicks)
		se := rtl.NewSim(elided.M)
		sp := rtl.NewSim(plain.M)
		ratioElided = float64(runJob(b, se, job.Mems, spec.MaxTicks)) / float64(fullT)
		ratioPlain = float64(runJob(b, sp, job.Mems, spec.MaxTicks)) / float64(fullT)
	}
	b.ReportMetric(100*ratioElided, "elided_time_pct")
	b.ReportMetric(100*ratioPlain, "unelided_time_pct")
}

func runJob(b *testing.B, s *rtl.Sim, mems map[string][]uint64, maxTicks uint64) uint64 {
	b.Helper()
	s.Reset()
	for name, data := range mems {
		if err := s.LoadMem(name, data); err != nil {
			b.Fatal(err)
		}
	}
	ticks, err := s.Run(maxTicks)
	if err != nil {
		b.Fatal(err)
	}
	return ticks
}

// BenchmarkAblationDenseModel disables the Lasso term: the model keeps
// nearly every feature, forcing a far larger slice.
func BenchmarkAblationDenseModel(b *testing.B) {
	spec, err := suite.ByName("h264")
	if err != nil {
		b.Fatal(err)
	}
	var sparseKept, denseKept, sparseArea, denseArea float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse, err := core.Train(spec, core.Options{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		dense, err := core.Train(spec, core.Options{Seed: 42, Gammas: []float64{0}})
		if err != nil {
			b.Fatal(err)
		}
		sparseKept = float64(len(sparse.Kept))
		denseKept = float64(len(dense.Kept))
		sparseArea = rtl.Stats(sparse.Slice.M).LogicArea()
		denseArea = rtl.Stats(dense.Slice.M).LogicArea()
	}
	b.ReportMetric(sparseKept, "lasso_kept")
	b.ReportMetric(denseKept, "dense_kept")
	b.ReportMetric(100*sparseArea/denseArea, "lasso_area_vs_dense_pct")
}

// BenchmarkRTLSimThroughput measures the raw cycle-accurate simulator —
// the substrate everything above runs on.
func BenchmarkRTLSimThroughput(b *testing.B) {
	spec, err := suite.ByName("aes")
	if err != nil {
		b.Fatal(err)
	}
	m := spec.Build()
	s := rtl.NewSim(m)
	job := spec.TestJobs(3)[0]
	var ticks uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ticks += runJob(b, s, job.Mems, spec.MaxTicks)
	}
	evals := float64(ticks) * float64(len(m.Nodes))
	b.ReportMetric(evals/b.Elapsed().Seconds()/1e6, "Mevals/s")
}
