// Quickstart: the complete predictive-DVFS flow on one accelerator in
// under a hundred lines.
//
// It builds the molecular-dynamics accelerator, trains an execution-time
// predictor from its netlist (feature detection → instrumentation →
// asymmetric-Lasso model → hardware slice), then walks through a few
// jobs showing what the controller would do for each: the slice's
// prediction, the chosen DVFS level, and the outcome.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/md"
	"repro/internal/core"
	"repro/internal/dvfs"
)

func main() {
	spec := md.Spec()

	fmt.Printf("=== offline: training a predictor for %q ===\n", spec.Name)
	pred, err := core.Train(spec, core.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("features detected: %d, kept by Lasso: %d\n",
		len(pred.Ins.Features), len(pred.Kept))
	for _, name := range pred.FeatureNames() {
		fmt.Printf("  kept: %s\n", name)
	}
	fmt.Printf("training error: median %+.2f%%, worst under %+.2f%%\n\n",
		100*pred.TrainErr.Median, 100*pred.TrainErr.WorstUnder)

	fmt.Println("=== online: per-job DVFS decisions ===")
	device := dvfs.ASIC(spec.NominalHz, false)
	const deadline = 16.7e-3

	jobs := spec.TestJobs(2)[:8]
	traces, err := pred.CollectTraces(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s %-12s %-12s %-10s %-8s %s\n",
		"job", "predicted", "actual", "level", "volts", "met deadline")
	for i, tr := range traces {
		dec := device.Select(dvfs.Request{
			PredictedT0: tr.PredSeconds,
			Margin:      0.05 * tr.PredSeconds,
			Budget:      deadline,
			SliceTime:   tr.SliceSeconds,
			SwitchTime:  device.SwitchTime,
		})
		pt := device.Points[dec.Level]
		total := tr.SliceSeconds + device.SwitchTime + tr.Cycles/pt.Freq
		fmt.Printf("%-4d %9.2f ms %9.2f ms %-10d %-8.3f %v\n",
			i, tr.PredSeconds*1e3, tr.Seconds*1e3, dec.Level, pt.V, total <= deadline)
	}

	fmt.Println("\nThe predictor runs the hardware slice first (a few percent")
	fmt.Println("of the budget), predicts the job's execution time from the")
	fmt.Println("slice's feature registers, and picks the lowest voltage level")
	fmt.Println("that still meets the 16.7 ms frame deadline.")
}
