// Cryptostream: DRM-protected video playback where a crypto accelerator
// must process each frame's payload before the frame deadline — the
// paper's §4.2 example of why an AES engine has a response-time
// requirement. A SHA engine verifies stream integrity on the same
// cadence.
//
// Both accelerators use real datapaths (AES-128 verified against
// crypto/aes, SHA-256 against crypto/sha256); their execution-time
// predictors are trained from the netlists with zero crypto-specific
// knowledge.
//
// Run with: go run ./examples/cryptostream
package main

import (
	"fmt"
	"log"

	"repro/internal/accel"
	aesaccel "repro/internal/accel/aes"
	shaaccel "repro/internal/accel/sha"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/rtl"
	"repro/internal/sim"
)

func engine(spec accel.Spec, seed int64) (*core.Predictor, []core.JobTrace, power.Model, power.Model) {
	pred, err := core.Train(spec, core.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	traces, err := pred.CollectTraces(spec.TestJobs(seed + 5))
	if err != nil {
		log.Fatal(err)
	}
	pm := power.FromStats(rtl.Stats(spec.Build()), power.DefaultParams(spec.NominalHz))
	spm := power.FromStats(rtl.Stats(pred.Slice.M), power.DefaultParams(spec.NominalHz))
	return pred, traces, pm, spm
}

func main() {
	fmt.Println("training predictors for the AES and SHA engines...")
	_, aesTraces, aesPM, aesSPM := engine(aesaccel.Spec(), 31)
	_, shaTraces, shaPM, shaSPM := engine(shaaccel.Spec(), 41)

	const deadline = 16.7e-3
	type eng struct {
		name      string
		traces    []core.JobTrace
		pm, spm   power.Model
		nominalHz float64
	}
	engines := []eng{
		{"aes", aesTraces, aesPM, aesSPM, aesaccel.Spec().NominalHz},
		{"sha", shaTraces, shaPM, shaSPM, shaaccel.Spec().NominalHz},
	}

	fmt.Printf("\nper-frame crypto under a %.1f ms deadline:\n\n", deadline*1e3)
	fmt.Printf("%-6s %-12s %-14s %-12s %s\n", "engine", "scheme", "energy", "vs baseline", "late frames")
	var savedTotal, baseTotal float64
	for _, e := range engines {
		device := dvfs.ASIC(e.nominalHz, false)
		run := func(ctrl control.Controller) sim.Result {
			r, err := sim.Run(e.traces, sim.Config{
				Device: device, Power: e.pm, SlicePower: e.spm,
				Deadline: deadline, Controller: ctrl,
			})
			if err != nil {
				log.Fatal(err)
			}
			return r
		}
		base := run(control.NewBaseline())
		pred := run(control.NewPredictive(0.05, false))
		for _, r := range []sim.Result{base, pred} {
			fmt.Printf("%-6s %-12s %10.3f mJ %10.1f%% %d/%d\n",
				e.name, r.Scheme, r.Energy*1e3, sim.Normalized(r, base), r.Misses, r.Jobs)
		}
		baseTotal += base.Energy
		savedTotal += base.Energy - pred.Energy
	}
	fmt.Printf("\ncombined crypto energy saved: %.1f%%\n", 100*savedTotal/baseTotal)
	fmt.Println("Each engine's per-frame cost is a pure function of payload size,")
	fmt.Println("so the slice predicts it almost exactly (Figure 10: aes/sha error ~0).")
}
