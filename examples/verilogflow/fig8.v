// The paper's Figure 8 example accelerator, written as plain Verilog.
// A control FSM reads work items from the "work" scratchpad (word 0 is
// the item count), dispatches each to one of two computations with
// different latencies (S2 variable, S3 fixed), and writes results.
//
// Run the predictor-generation flow on it with:
//   go run ./cmd/vslice examples/verilogflow/fig8.v
module fig8(input clk, output done);
  reg [2:0] state = 0;      // 0=IDLE 1=S1 2=S2 3=S3 4=S4 5=DONE
  reg [7:0] cnt = 0;        // variable-latency counter for S2
  reg [7:0] fix = 0;        // fixed-latency counter for S3
  reg [7:0] idx = 1;
  reg [15:0] outv = 0;
  reg [15:0] res [0:63];
  reg [15:0] work [0:63];

  wire [15:0] item = work[idx];
  wire [0:0] heavy = item[0];
  wire [7:0] lat = item[8:1];
  wire [7:0] n = work[0];

  always @(posedge clk) begin
    case (state)
      0: state <= 1;
      1: begin
        if (heavy) begin
          cnt <= lat;
          state <= 2;
        end else begin
          fix <= 8'd4;
          state <= 3;
        end
      end
      2: begin
        if (cnt == 0) state <= 4;
        cnt <= (cnt == 0) ? cnt : cnt - 8'd1;
      end
      3: begin
        if (fix == 0) state <= 4;
        fix <= (fix == 0) ? fix : fix - 8'd1;
      end
      4: begin
        res[idx] <= outv;
        idx <= idx + 8'd1;
        state <= (idx >= n) ? 3'd5 : 3'd1;
      end
    endcase
    outv <= outv + item * item;
  end
  assign done = state == 5;
endmodule
