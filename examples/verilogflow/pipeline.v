// A hierarchical accelerator in the shape of the paper's Figure 9: a
// top-level controller streaming work items through an instantiated
// variable-latency compute engine. The frontend flattens the hierarchy
// (engine state becomes u_eng.cnt etc.) before FSM/counter detection.
//
//   go run ./cmd/vslice examples/verilogflow/pipeline.v
//   go run ./cmd/rtlsim -mem items=3,20,4,11 examples/verilogflow/pipeline.v
module engine(input clk, input start, input [7:0] work, output busy);
  reg [7:0] cnt = 0;
  always @(posedge clk) begin
    if (start) cnt <= work;
    else if (cnt != 0) cnt <= cnt - 8'd1;
  end
  assign busy = cnt != 0;
endmodule

module pipeline(input clk, output done);
  reg [31:0] items [0:63];
  reg [6:0] idx = 1;
  reg [1:0] state = 0;
  reg [31:0] checksum = 0;
  wire [6:0] n = items[0];
  wire [31:0] item = items[idx];
  wire busy;
  wire kick = state == 0;
  engine u_eng (.clk(clk), .start(kick), .work(item[7:0]), .busy(busy));
  always @(posedge clk) begin
    case (state)
      0: state <= 1;
      1: if (!busy) begin
        checksum <= checksum ^ {item[15:0], item[31:16]};
        idx <= idx + 7'd1;
        state <= (idx >= n) ? 2'd2 : 2'd0;
      end
    endcase
  end
  assign done = state == 2;
endmodule
