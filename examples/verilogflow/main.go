// Verilogflow: the paper's automated flow end to end, starting from
// Verilog source (fig8.v — the paper's Figure 8 example machine).
//
// The program parses and elaborates the RTL, wraps it in an accelerator
// Spec with a synthetic workload, trains the execution-time predictor
// (feature detection → instrumentation → asymmetric Lasso → hardware
// slice), reports its accuracy, and emits the generated predictor slice
// as Verilog next to the input.
//
// Run with: go run ./examples/verilogflow
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/rtl"
	"repro/internal/verilog"
)

// fig8Jobs generates work lists with a bursty mix of heavy and light
// items.
func fig8Jobs(n int, seed int64) []accel.Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]accel.Job, n)
	for i := range jobs {
		items := make([]uint64, 1+rng.Intn(40))
		for j := range items {
			heavy := rng.Float64() < 0.4
			lat := uint64(rng.Intn(30))
			v := lat << 1
			if heavy {
				v |= 1
			}
			items[j] = v
		}
		mem := make([]uint64, 1+len(items))
		mem[0] = uint64(len(items))
		copy(mem[1:], items)
		jobs[i] = accel.Job{
			Mems:  map[string][]uint64{"work": mem},
			Class: "fig8",
		}
	}
	return jobs
}

func main() {
	srcPath := filepath.Join("examples", "verilogflow", "fig8.v")
	src, err := os.ReadFile(srcPath)
	if err != nil {
		log.Fatal(err)
	}
	build := func() *rtl.Module {
		m, err := verilog.ParseAndElaborate(string(src))
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	spec := accel.Spec{
		Name:        "fig8",
		Description: "Figure 8 example machine (from Verilog source)",
		TaskDesc:    "Process one work list",
		NominalHz:   200e6,
		CycleScale:  1024,
		AreaUM2:     10000,
		MemFraction: 0.25,
		Build:       build,
		TrainJobs:   func(seed int64) []accel.Job { return fig8Jobs(150, seed) },
		TestJobs:    func(seed int64) []accel.Job { return fig8Jobs(100, seed+1000) },
		MaxTicks:    1 << 16,
	}

	fmt.Printf("parsed %s: %d nodes, %d registers\n", srcPath,
		len(build().Nodes), len(build().Regs))

	pred, err := core.Train(spec, core.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", pred.Report())

	errs, err := pred.EvaluateTest(spec.TestJobs(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test error: median %+.2f%%, range [%+.2f%%, %+.2f%%]\n",
		100*errs.Median, 100*errs.Min, 100*errs.Max)

	full := rtl.Stats(pred.Ins.M)
	sl := rtl.Stats(pred.Slice.M)
	fmt.Printf("slice: %d nodes, %.1f%% of the design's logic\n",
		sl.Nodes, 100*sl.LogicArea()/full.LogicArea())

	outPath := filepath.Join("examples", "verilogflow", "fig8_slice.v")
	if err := os.WriteFile(outPath, []byte(verilog.Emit(pred.Slice.M)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote the generated predictor slice to %s\n", outPath)
}
