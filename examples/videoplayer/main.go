// Videoplayer: a 60 fps H.264 playback session under different DVFS
// schemes — the paper's motivating scenario (§1, §2.3).
//
// It decodes a three-clip playlist with the H.264 accelerator and
// compares constant-frequency, PID-reactive, and slice-driven
// predictive control, then shows the effect of deadline slack (30 fps
// playback) and the emergency boost level.
//
// Run with: go run ./examples/videoplayer
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/h264"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	spec := h264.Spec()
	fmt.Println("training the decoder's execution-time predictor...")
	pred, err := core.Train(spec, core.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// A playlist of three clips with different content character.
	var jobs []struct{}
	_ = jobs
	playlist := append(append(
		h264.Jobs(workload.Video(workload.ClipNews, 240, 24, 100), 100),
		h264.Jobs(workload.Video(workload.ClipForeman, 240, 24, 200), 200)...),
		h264.Jobs(workload.Video(workload.ClipCoastguard, 240, 24, 300), 300)...)
	traces, err := pred.CollectTraces(playlist)
	if err != nil {
		log.Fatal(err)
	}

	pm := power.FromStats(rtl.Stats(spec.Build()), power.DefaultParams(spec.NominalHz))
	spm := power.FromStats(rtl.Stats(pred.Slice.M), power.DefaultParams(spec.NominalHz))

	run := func(name string, d *dvfs.Device, ctrl control.Controller, deadline float64) sim.Result {
		r, err := sim.Run(traces, sim.Config{
			Device: d, Power: pm, SlicePower: spm,
			Deadline: deadline, Controller: ctrl,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	asic := dvfs.ASIC(spec.NominalHz, false)
	boost := dvfs.ASIC(spec.NominalHz, true)

	fmt.Printf("\nplaylist: %d frames at 60 fps (16.7 ms deadline)\n\n", len(traces))
	base := run("baseline", asic, control.NewBaseline(), 16.7e-3)
	schemes := []sim.Result{
		base,
		run("pid", asic, control.NewPID(control.DefaultPIDConfig(16.7e-3)), 16.7e-3),
		run("prediction", asic, control.NewPredictive(0.05, false), 16.7e-3),
		run("prediction+boost", boost, control.NewPredictive(0.05, true), 16.7e-3),
	}
	fmt.Printf("%-18s %-14s %-14s %s\n", "scheme", "energy", "vs baseline", "dropped frames")
	for _, r := range schemes {
		fmt.Printf("%-18s %10.2f mJ %12.1f%% %d/%d\n",
			r.Scheme, r.Energy*1e3, sim.Normalized(r, base), r.Misses, r.Jobs)
	}

	fmt.Println("\n30 fps playback (33.4 ms deadline) leaves more slack:")
	base30 := run("baseline", asic, control.NewBaseline(), 33.4e-3)
	pred30 := run("prediction", asic, control.NewPredictive(0.05, false), 33.4e-3)
	fmt.Printf("%-18s %10.2f mJ %12.1f%% %d/%d\n",
		pred30.Scheme, pred30.Energy*1e3, sim.Normalized(pred30, base30), pred30.Misses, pred30.Jobs)

	fmt.Println("\nNo predictor retraining was needed for the new deadline —")
	fmt.Println("only the DVFS model's budget changed (§4.3).")
}
