// Framepipeline: two accelerators in series under one frame deadline —
// an H.264 decoder followed by a stencil post-processing filter, the
// multi-accelerator handheld scenario of the paper's related work
// (Nachiappan et al., HPCA 2015), driven here by per-accelerator
// execution-time predictors.
//
// The frame budget is split between the stages in proportion to their
// *predicted* times, so a heavy decode borrows budget from an easy
// filter and vice versa — something a per-device reactive governor
// cannot do. The example compares that predictive budget split against
// a fixed 50/50 split and the constant-frequency baseline.
//
// Run with: go run ./examples/framepipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/accel"
	"repro/internal/accel/h264"
	"repro/internal/accel/stencil"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/rtl"
	"repro/internal/workload"
)

// stage bundles one accelerator's predictor, device, and power model.
type stage struct {
	name   string
	pred   *core.Predictor
	device *dvfs.Device
	pm     power.Model
	traces []core.JobTrace
}

func newStage(name string, spec accel.Spec, jobs []accel.Job, seed int64) *stage {
	pred, err := core.Train(spec, core.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	traces, err := pred.CollectTraces(jobs)
	if err != nil {
		log.Fatal(err)
	}
	return &stage{
		name:   name,
		pred:   pred,
		device: dvfs.ASIC(spec.NominalHz, false),
		pm:     power.FromStats(rtl.Stats(spec.Build()), power.DefaultParams(spec.NominalHz)),
		traces: traces,
	}
}

// runFrame executes one pipeline stage within its share of the budget
// and returns (time, energy).
func (st *stage) runFrame(i int, budget float64, predictive bool) (float64, float64) {
	tr := st.traces[i]
	var level int
	if predictive {
		dec := st.device.Select(dvfs.Request{
			PredictedT0: tr.PredSeconds,
			Margin:      0.05 * tr.PredSeconds,
			Budget:      budget,
			SliceTime:   tr.SliceSeconds,
			SwitchTime:  st.device.SwitchTime,
		})
		level = dec.Level
	} else {
		level = st.device.Nominal
	}
	pt := st.device.Points[level]
	t := tr.Cycles / pt.Freq
	if predictive {
		t += tr.SliceSeconds + st.device.SwitchTime
	}
	e := st.pm.JobEnergy(pt, tr.Cycles)
	return t, e
}

func main() {
	const frames = 240
	const deadline = 16.7e-3

	fmt.Println("training predictors for both pipeline stages...")
	decodeJobs := h264.Jobs(workload.Video(workload.ClipForeman, frames, 24, 5), 5)
	// Post-processing filters a fixed-resolution frame whose tile count
	// wobbles with cropping decisions.
	rng := rand.New(rand.NewSource(9))
	filterImgs := make([]workload.StencilImage, frames)
	for i := range filterImgs {
		filterImgs[i] = workload.StencilImage{
			Rows: 14 + rng.Intn(6), Cols: 16 + rng.Intn(6), Class: "frame",
		}
	}
	dec := newStage("h264", h264.Spec(), decodeJobs, 11)
	fil := newStage("stencil", stencil.Spec(), stencil.JobsFrom(filterImgs, 9), 13)

	run := func(name string, predictive, proportional bool) {
		var energy float64
		misses := 0
		for i := 0; i < frames; i++ {
			decShare := 0.5
			if proportional {
				pd := dec.traces[i].PredSeconds
				pf := fil.traces[i].PredSeconds
				decShare = pd / (pd + pf)
			}
			t1, e1 := dec.runFrame(i, deadline*decShare, predictive)
			// The filter gets whatever is actually left.
			t2, e2 := fil.runFrame(i, deadline-t1, predictive)
			energy += e1 + e2
			if t1+t2 > deadline {
				misses++
			}
		}
		fmt.Printf("%-28s %9.2f mJ   %d/%d late frames\n", name, energy*1e3, misses, frames)
	}

	fmt.Printf("\n%d frames, decode+filter within %.1f ms each:\n\n", frames, deadline*1e3)
	run("baseline (both nominal)", false, false)
	run("prediction, 50/50 split", true, false)
	run("prediction, predicted split", true, true)

	fmt.Println("\nSplitting the frame budget by predicted stage times lets a")
	fmt.Println("heavy decode borrow slack from an easy filter, which a fixed")
	fmt.Println("split wastes — the multi-device coordination the paper's")
	fmt.Println("related work calls for, enabled by per-job prediction.")
}
