// Camerapipeline: burst photography with a JPEG encode deadline per
// shot — the paper's §4.2 example of a throughput-oriented accelerator
// acquiring a response-time requirement.
//
// A burst produces images of wildly varying encoded complexity, and
// consecutive shots are uncorrelated, which defeats reactive control
// (§2.4). The example compares the table-based controller a real SoC
// driver uses (worst case per size class, like the Exynos MFC) with
// PID and slice-driven prediction.
//
// Run with: go run ./examples/camerapipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/jpegenc"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/rtl"
	"repro/internal/sim"
)

func main() {
	spec := jpegenc.Spec()
	fmt.Println("training the encoder's execution-time predictor...")
	pred, err := core.Train(spec, core.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// Training traces feed the table controller's worst-case table.
	trainTraces, err := pred.CollectTraces(spec.TrainJobs(21))
	if err != nil {
		log.Fatal(err)
	}
	table := control.NewTable(control.TableFromTraces(trainTraces), 0.10)

	burst := spec.TestJobs(99)
	traces, err := pred.CollectTraces(burst)
	if err != nil {
		log.Fatal(err)
	}

	pm := power.FromStats(rtl.Stats(spec.Build()), power.DefaultParams(spec.NominalHz))
	spm := power.FromStats(rtl.Stats(pred.Slice.M), power.DefaultParams(spec.NominalHz))
	device := dvfs.ASIC(spec.NominalHz, false)

	const deadline = 16.7e-3
	run := func(ctrl control.Controller) sim.Result {
		r, err := sim.Run(traces, sim.Config{
			Device: device, Power: pm, SlicePower: spm,
			Deadline: deadline, Controller: ctrl,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run(control.NewBaseline())
	results := []sim.Result{
		base,
		run(table),
		run(control.NewPID(control.DefaultPIDConfig(deadline))),
		run(control.NewPredictive(0.05, false)),
	}

	fmt.Printf("\nburst of %d shots, %0.1f ms budget per shot\n\n", len(traces), deadline*1e3)
	fmt.Printf("%-12s %-14s %-12s %s\n", "scheme", "energy", "vs baseline", "late shots")
	for _, r := range results {
		fmt.Printf("%-12s %10.3f mJ %10.1f%% %d/%d\n",
			r.Scheme, r.Energy*1e3, sim.Normalized(r, base), r.Misses, r.Jobs)
	}

	fmt.Println("\nThe table controller is safe but coarse: every shot in a size")
	fmt.Println("class pays that class's worst case (§2.4). The PID chases the")
	fmt.Println("uncorrelated shot sizes. The slice-driven predictor reads each")
	fmt.Println("shot's actual complexity before choosing a level.")
}
