// Command slicegen runs the offline feature-extraction and hardware-
// slicing flow (Figure 6) for one benchmark accelerator and prints a
// detailed report: detected FSMs with their recovered transition
// tables, detected counters, instrumented features, wait-state
// elisions, and the generated slice's size relative to the design.
//
// Usage:
//
//	slicegen [-all-features] <benchmark>
//
// Benchmarks: h264, cjpeg, djpeg, md, stencil, aes, sha.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analyze"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/lint"
	"repro/internal/rtl"
	"repro/internal/slice"
	"repro/internal/suite"
)

func main() {
	allFeatures := flag.Bool("all-features", false,
		"slice every detected feature instead of the model's selection")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: slicegen [-all-features] <benchmark>\navailable: %v\n", suite.Names())
		os.Exit(2)
	}
	spec, err := suite.ByName(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	m := spec.Build()
	full := rtl.Stats(m)
	fmt.Printf("design %s: %d nodes, %d registers, %.0f gate-equivalents\n\n",
		spec.Name, full.Nodes, full.Regs, full.Total())

	// Verify the sole-consumer condition on the bare design before
	// instrumentation appends witness hardware; the analysis is shared.
	a := analyze.Analyze(m)
	safety := lint.VerifySliceSafety(m, a, true)

	ins, err := instrument.WithAnalysis(m, a)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("-- detected FSMs (%d) --\n", len(a.FSMs))
	for _, f := range a.FSMs {
		fmt.Printf("  %s: %d states, transitions:", f.Name, len(f.States))
		for _, tr := range f.Transitions {
			if tr.From != tr.To {
				fmt.Printf(" %d->%d", tr.From, tr.To)
			}
		}
		fmt.Println()
	}

	fmt.Printf("\n-- detected counters (%d) --\n", len(a.Counters))
	for _, c := range a.Counters {
		dir := "up"
		if c.Dir < 0 {
			dir = "down"
		}
		fmt.Printf("  %-16s %-4s step %d, %d load arm(s)\n", c.Name, dir, c.Step, len(c.Loads))
	}

	fmt.Printf("\n-- wait states (%d counter, eligible for elision) --\n", len(a.WaitStates))
	for _, ws := range a.WaitStates {
		fmt.Printf("  %s state %d waits on %s, exits to %d\n",
			a.FSMs[ws.FSM].Name, ws.State, a.Counters[ws.Counter].Name, ws.Exit)
	}
	if safety.OK() {
		fmt.Printf("slice-safety: PASS (%d wait guard(s) verified sole-consumer)\n", safety.Waits)
	} else {
		fmt.Printf("slice-safety: FAIL (%d violation(s))\n", len(safety.Violations))
		for _, v := range safety.Violations {
			fmt.Printf("  %s\n", v.Msg)
		}
	}

	fmt.Printf("\n-- instrumented features (%d) --\n", len(ins.Features))
	for _, f := range ins.Features {
		fmt.Printf("  %s\n", f.Name)
	}

	keep := make([]int, 0, len(ins.Features))
	var keptNames []string
	if *allFeatures {
		for i := range ins.Features {
			keep = append(keep, i)
			keptNames = append(keptNames, ins.Features[i].Name)
		}
	} else {
		fmt.Println("\ntraining the model to select features (use -all-features to skip)...")
		pred, err := core.Train(spec, core.Options{Seed: 42})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		keep = pred.Kept
		keptNames = pred.FeatureNames()
		fmt.Print(pred.Model.Report(pred.Ins.Names()))
		// Report against the predictor's own instrumented module.
		ins = pred.Ins
	}

	sl, err := slice.Slice(ins, keep, slice.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ss := rtl.Stats(sl.M)
	fmt.Printf("\n-- hardware slice (%d features kept) --\n", len(keep))
	for _, n := range keptNames {
		fmt.Printf("  computes %s\n", n)
	}
	fmt.Printf("elided %d counter wait(s), approximated %d data wait(s)\n",
		sl.ElidedWaits, sl.ApproxWaits)
	fmt.Printf("slice: %d nodes, %d registers\n", ss.Nodes, ss.Regs)
	fmt.Printf("logic area: %.0f of %.0f gate-equivalents (%.1f%% of the design)\n",
		ss.LogicArea(), full.LogicArea(), 100*ss.LogicArea()/full.LogicArea())

	if !safety.OK() {
		fmt.Fprintf(os.Stderr, "slicegen: %s: wait-state elision is UNSOUND for this design (%d slice-safety violation(s), see report)\n",
			spec.Name, len(safety.Violations))
		os.Exit(1)
	}
}
