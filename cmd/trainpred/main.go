// Command trainpred trains the execution-time predictor for one (or
// every) benchmark and reports its accuracy on the held-out test
// workload — the per-benchmark data behind the paper's Figure 10.
//
// Usage:
//
//	trainpred [-seed N] [-engine E] [-cachedir dir] [-save model.json] [-load model.json] [benchmark]
//
// Without an argument every benchmark is trained. -save writes the
// trained model (named coefficients) as JSON; -load skips training and
// evaluates a previously saved model instead. -cachedir (or
// REPRO_CACHE_DIR) enables the persistent trace cache, so retraining
// with unchanged netlists and workloads skips all RTL simulation.
// -engine selects the RTL engine (compiled, event, interp, batch,
// native); batch packs training jobs 64 to a simulation, native runs
// pre-generated straight-line code where registered.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/rtl"
	"repro/internal/suite"
	"repro/internal/tracecache"
)

func main() {
	seed := flag.Int64("seed", 42, "workload generation seed")
	save := flag.String("save", "", "write the trained model as JSON (single benchmark only)")
	load := flag.String("load", "", "evaluate a saved model instead of training")
	engine := flag.String("engine", "", "RTL engine: compiled, event, interp, batch, or native (default: compiled, or $REPRO_ENGINE)")
	cacheDir := flag.String("cachedir", os.Getenv("REPRO_CACHE_DIR"),
		"persistent trace cache directory (default: $REPRO_CACHE_DIR; empty disables)")
	flag.Parse()

	if *engine != "" {
		e, err := rtl.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := rtl.SetDefaultEngine(e); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var cache *tracecache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = tracecache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		core.SetTraceCache(cache)
	}

	names := suite.Names()
	if flag.NArg() == 1 {
		names = []string{flag.Arg(0)}
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: trainpred [-seed N] [-engine e] [-save f] [-load f] [benchmark]")
		os.Exit(2)
	}
	if (*save != "" || *load != "") && len(names) != 1 {
		fmt.Fprintln(os.Stderr, "trainpred: -save/-load require a single benchmark")
		os.Exit(2)
	}

	for _, name := range names {
		spec, err := suite.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var pred *core.Predictor
		if *load != "" {
			data, err := os.ReadFile(*load)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			pred, err = core.Load(data, spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("loaded %s model from %s (%d terms)\n", name, *load, len(pred.Kept))
		} else {
			pred, err = core.Train(spec, core.Options{Seed: *seed})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *save != "" {
			data, err := pred.Save()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(*save, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("saved model to %s\n", *save)
		}
		fmt.Print(pred.Report())
		errs, err := pred.EvaluateTest(spec.TestJobs(*seed + 1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  test error: median %+.2f%%, p25 %+.2f%%, p75 %+.2f%%, range [%+.2f%%, %+.2f%%]\n",
			100*errs.Median, 100*errs.P25, 100*errs.P75, 100*errs.Min, 100*errs.Max)
		fmt.Printf("  under-predicted %.1f%% of jobs (worst %+.2f%%)\n\n",
			100*errs.UnderFrac, 100*errs.WorstUnder)
	}
	if cache != nil {
		fmt.Printf("trace cache [%s]: %s; ", cache.Dir(), cache.Stats())
	}
	fmt.Printf("jobs simulated: %d\n", core.SimulatedJobs())
}
