// Command dvfserved runs the online DVFS serving layer: it trains the
// paper's predictor for each requested benchmark, builds one serving
// shard per accelerator (bounded queue, slice-driven frequency
// governor, deadline tracking, graceful max-frequency degradation),
// and exposes an HTTP JSON API plus a metrics endpoint.
//
// Usage:
//
//	dvfserved [-addr :8437] [-seed N] [-quick] [-benchmarks h264,aes]
//	          [-queue N] [-degrade-wait-ms F] [-boost] [-deadline-ms F]
//	          [-workers N] [-engine E] [-cachedir DIR]
//	          [-overflow shed|degrade] [-job-timeout-ms F] [-job-retries N]
//	          [-retry-backoff-ms F] [-stall-penalty-ms F]
//	          [-faults SPEC] [-fault-seed N]
//	          [-online] [-drift-window N] [-canary-window N]
//	          [-replicas N] [-router predict|pressure|hash]
//	          [-autoscale-max N] [-autoscale-window N] [-max-backlog N]
//
// With -replicas > 1 (or any -router) the daemon runs in cluster mode:
// N replicas per accelerator behind a predict-then-place router (see
// package cluster), adding /v1/cluster and /v1/retire endpoints.
//
// Endpoints:
//
//	GET  /healthz        liveness probe
//	GET  /v1/benchmarks  served accelerators
//	GET  /v1/stats       per-shard stats (JSON)
//	GET  /v1/model       live model per shard: version, β, trainer counters
//	POST /v1/jobs        submit a generated job stream
//	POST /v1/drain       block until queues drain
//	GET  /metrics        counters and histograms (text exposition)
//
// Example session:
//
//	dvfserved -quick -benchmarks aes &
//	curl -s localhost:8437/v1/benchmarks
//	curl -s -X POST localhost:8437/v1/jobs \
//	     -d '{"bench":"aes","count":32,"seed":7}'
//	curl -s -X POST localhost:8437/v1/drain
//	curl -s localhost:8437/v1/stats
//	curl -s localhost:8437/metrics | grep deadline_misses
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/accel"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/online"
	"repro/internal/rtl"
	"repro/internal/serve"
	"repro/internal/suite"
	"repro/internal/tracecache"
)

func main() {
	addr := flag.String("addr", ":8437", "HTTP listen address")
	seed := flag.Int64("seed", 42, "workload/training seed")
	quick := flag.Bool("quick", false, "trim training workloads for a fast start")
	benches := flag.String("benchmarks", "", "comma-separated benchmarks to serve (default: all)")
	queueDepth := flag.Int("queue", serve.DefaultQueueDepth, "per-shard admission queue depth")
	degradeMs := flag.Float64("degrade-wait-ms", 0, "queue wait (ms) beyond which jobs run at max frequency without prediction (0 = half the deadline, <0 disables)")
	boost := flag.Bool("boost", false, "allow the 1.08 V emergency boost level")
	deadlineMs := flag.Float64("deadline-ms", exp.Deadline*1e3, "per-job deadline in milliseconds")
	workers := flag.Int("workers", 0, "parallel training workers (0 = GOMAXPROCS)")
	engine := flag.String("engine", "", "RTL engine: compiled, event, interp, batch, or native")
	cacheDir := flag.String("cachedir", os.Getenv("REPRO_CACHE_DIR"),
		"persistent trace cache directory (default: $REPRO_CACHE_DIR; empty disables)")
	overflow := flag.String("overflow", "shed", "full-queue policy: shed (reject excess) or degrade (reject and run the backlog at max frequency)")
	jobTimeoutMs := flag.Float64("job-timeout-ms", 0, "wall-clock watchdog per prediction attempt in ms (0 disables)")
	jobRetries := flag.Int("job-retries", 1, "retries for a stalled prediction attempt before degrading")
	retryBackoffMs := flag.Float64("retry-backoff-ms", 1, "wall-clock backoff before the first retry in ms, doubling per attempt")
	stallPenaltyMs := flag.Float64("stall-penalty-ms", 0, "virtual time charged per stalled attempt in ms (0 = the job timeout)")
	faults := flag.String("faults", "", `fault-injection spec, e.g. "serve.stall=0.1,tracecache.read=0.05" (empty disables)`)
	faultSeed := flag.Int64("fault-seed", 1, "seed for the injected fault schedule")
	onlineLearn := flag.Bool("online", false, "enable online learning: drift detection, background refit, canary hot-swap (per shard, or at the router in cluster mode)")
	driftWindow := flag.Int("drift-window", 64, "online: drift-monitor evaluation window in observations")
	canaryWindow := flag.Int("canary-window", 64, "online: canary shadow-prediction window in observations")
	replicas := flag.Int("replicas", 1, "replicas per accelerator; >1 enables cluster mode (predict-then-place router)")
	router := flag.String("router", "", "cluster routing policy: predict, pressure, or hash (implies cluster mode)")
	autoscaleMax := flag.Int("autoscale-max", 0, "cluster mode: autoscale replicas up to this count (0 disables; min is -replicas)")
	autoscaleWindow := flag.Int("autoscale-window", 64, "cluster mode: autoscaler evaluation window in submissions")
	maxBacklog := flag.Int("max-backlog", 0, "cluster mode: per-replica virtual backlog bound in jobs (0 = unbounded)")
	flag.Parse()

	policy, err := serve.ParseOverflowPolicy(*overflow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvfserved: %v\n", err)
		os.Exit(2)
	}
	var injector *fault.Injector
	if *faults != "" {
		injector, err = fault.Parse(*faultSeed, *faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfserved: %v\n", err)
			os.Exit(2)
		}
		// One injector serves every subsystem: serving shards key by
		// shard name, the cache by entry key, training by job id — the
		// sites never collide.
		core.SetFaultInjector(injector)
		fmt.Printf("dvfserved: %s\n", injector)
	}

	core.SetWorkers(*workers)
	if *engine != "" {
		e, err := rtl.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfserved: %v\n", err)
			os.Exit(2)
		}
		rtl.SetDefaultEngine(e)
	}
	if *cacheDir != "" {
		cache, err := tracecache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfserved: %v\n", err)
			os.Exit(1)
		}
		cache.SetFaults(injector)
		core.SetTraceCache(cache)
	}

	names := suite.Names()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	lab := exp.NewLab(*seed)
	lab.Quick = *quick
	var onlineCfg *online.Config
	if *onlineLearn {
		onlineCfg = &online.Config{DriftWindow: *driftWindow, CanaryWindow: *canaryWindow}
	}
	shardCfg := func(name string) (serve.ShardConfig, string, error) {
		entry, err := lab.Entry(name)
		if err != nil {
			return serve.ShardConfig{}, "", err
		}
		return serve.ShardConfig{
			Name: name,
			Profile: serve.Profile{
				Pred:       entry.Pred,
				Device:     dvfs.ASIC(entry.Pred.Spec.NominalHz, *boost),
				Power:      entry.Power,
				SlicePower: entry.SlicePower,
				Deadline:   *deadlineMs * 1e-3,
				Margin:     exp.PredictiveMargin,
				AllowBoost: *boost,
			},
			QueueDepth:   *queueDepth,
			DegradeWait:  *degradeMs * 1e-3,
			Overflow:     policy,
			JobTimeout:   time.Duration(*jobTimeoutMs * float64(time.Millisecond)),
			MaxRetries:   *jobRetries,
			RetryBackoff: time.Duration(*retryBackoffMs * float64(time.Millisecond)),
			StallPenalty: *stallPenaltyMs * 1e-3,
			Faults:       injector,
			Online:       onlineCfg,
		}, entry.Pred.Spec.Description, nil
	}
	source := func(bench string, n int, jobSeed int64) ([]accel.Job, error) {
		spec, err := suite.ByName(bench)
		if err != nil {
			return nil, err
		}
		pool := spec.TestJobs(jobSeed)
		if len(pool) == 0 {
			return nil, fmt.Errorf("no jobs for %s", bench)
		}
		jobs := make([]accel.Job, n)
		for i := range jobs {
			jobs[i] = pool[i%len(pool)]
		}
		return jobs, nil
	}

	var handler http.Handler
	if *replicas > 1 || *router != "" {
		// Cluster mode: N replicas per accelerator behind the
		// predict-then-place router.
		routePolicy, err := cluster.ParsePolicy(*router)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfserved: %v\n", err)
			os.Exit(2)
		}
		var scale *cluster.AutoscaleConfig
		if *autoscaleMax > 0 {
			scale = &cluster.AutoscaleConfig{Min: *replicas, Max: *autoscaleMax, Window: *autoscaleWindow}
		}
		fleet := cluster.NewFleet()
		for _, name := range names {
			name = strings.TrimSpace(name)
			cfg, desc, err := shardCfg(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvfserved: train %s: %v\n", name, err)
				os.Exit(1)
			}
			if _, err := fleet.AddPool(cluster.Config{
				Shard:      cfg,
				Replicas:   *replicas,
				Policy:     routePolicy,
				MaxBacklog: *maxBacklog,
				Autoscale:  scale,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "dvfserved: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("dvfserved: pool %s ready, %d %s-routed replicas (%s)\n", name, *replicas, routePolicy.Name(), desc)
		}
		handler = cluster.NewAPI(fleet, source).Handler()
		fmt.Printf("dvfserved: listening on %s, cluster mode, serving %v\n", *addr, fleet.Names())
	} else {
		srv := serve.NewServer()
		for _, name := range names {
			name = strings.TrimSpace(name)
			cfg, desc, err := shardCfg(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvfserved: train %s: %v\n", name, err)
				os.Exit(1)
			}
			if _, err := srv.AddShard(cfg); err != nil {
				fmt.Fprintf(os.Stderr, "dvfserved: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("dvfserved: shard %s ready (%s)\n", name, desc)
		}
		handler = serve.NewAPI(srv, source).Handler()
		fmt.Printf("dvfserved: listening on %s, serving %v\n", *addr, srv.Names())
	}
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fmt.Fprintf(os.Stderr, "dvfserved: %v\n", err)
		os.Exit(1)
	}
}
