// Command rtlcheck runs the netlist lint & verification suite of
// package lint over accelerators, testdesigns, or Verilog files, and
// prints structured diagnostics. It exits nonzero when any
// error-severity finding survives filtering, so CI can gate on it.
//
// Usage:
//
//	rtlcheck [flags] <target>...
//
// A target is a benchmark name (h264, cjpeg, djpeg, md, stencil, aes,
// sha), the word "all" (the whole suite), "testdesigns" (the simulation
// test designs), or a path to a .v file (parsed, elaborated, and linted
// with source spans; elaboration warnings become diagnostics too).
//
// Flags:
//
//	-rules            print the rule catalog and exit
//	-enable ids       comma-separated rule IDs to run (default: all)
//	-suppress ids     comma-separated rule IDs to drop
//	-min severity     drop findings below info|warning|error (default info)
//	-json             emit diagnostics as JSON
//	-bounds           print the static cycle-bound table instead of linting
//
// With -bounds, each target design is analyzed with the abstract
// interpreter and its static [MinCycles, MaxCycles] window printed; for
// benchmark targets the hardware slice's bounds are printed too. The
// exit status is 1 if any design has no finite upper bound.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/absint"
	"repro/internal/instrument"
	"repro/internal/lint"
	"repro/internal/rtl"
	"repro/internal/slice"
	"repro/internal/suite"
	"repro/internal/testdesigns"
	"repro/internal/verilog"
)

func main() {
	showRules := flag.Bool("rules", false, "print the rule catalog and exit")
	enable := flag.String("enable", "", "comma-separated rule IDs to run (default: all)")
	suppress := flag.String("suppress", "", "comma-separated rule IDs to drop")
	minSev := flag.String("min", "info", "drop findings below this severity (info|warning|error)")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON")
	showBounds := flag.Bool("bounds", false, "print the static cycle-bound table instead of linting")
	flag.Parse()

	if *showRules {
		printCatalog()
		return
	}
	if *showBounds {
		os.Exit(runBounds(flag.Args()))
	}
	if flag.NArg() == 0 {
		fmt.Fprintf(os.Stderr, "usage: rtlcheck [flags] <target>...\ntargets: benchmark name %v, \"all\", \"testdesigns\", or a .v file\n", suite.Names())
		os.Exit(2)
	}

	cfg := lint.Config{Enable: splitIDs(*enable), Suppress: splitIDs(*suppress)}
	sev, err := lint.ParseSeverity(*minSev)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.MinSeverity = sev

	var all []lint.Diagnostic
	errors := 0
	for _, target := range flag.Args() {
		diags, err := lintTarget(target, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		all = append(all, diags...)
	}
	lint.SortDiagnostics(all)
	for _, d := range all {
		if d.Sev == lint.Error {
			errors++
		}
		if !*asJSON {
			fmt.Println(d)
		}
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("%d diagnostic(s), %d error(s)\n", len(all), errors)
	}
	if errors > 0 {
		os.Exit(1)
	}
}

// lintTarget resolves one command-line target to a set of designs and
// lints each.
func lintTarget(target string, cfg lint.Config) ([]lint.Diagnostic, error) {
	if strings.HasSuffix(target, ".v") {
		return lintVerilog(target, cfg)
	}
	var mods []*rtl.Module
	switch target {
	case "all":
		for _, spec := range suite.All() {
			mods = append(mods, spec.Build())
		}
	case "testdesigns":
		hand, _ := testdesigns.HandFSM()
		mods = append(mods, testdesigns.Toy().M, hand)
	default:
		spec, err := suite.ByName(target)
		if err != nil {
			return nil, err
		}
		mods = append(mods, spec.Build())
	}
	var out []lint.Diagnostic
	for _, m := range mods {
		out = append(out, lint.Run(m, cfg).Diags...)
	}
	return out, nil
}

// lintVerilog parses and elaborates a Verilog file (top = the last
// module, matching the elaborator's convention for single-file input),
// converts elaboration warnings to diagnostics, and lints the netlist.
// A hard elaboration error (e.g. a wire read but never driven) is
// reported as a single error-severity diagnostic rather than aborting,
// so one broken file doesn't hide findings in the others.
func lintVerilog(path string, cfg lint.Config) ([]lint.Diagnostic, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	mods, err := verilog.ParseFileNamed(string(src), path)
	if err != nil {
		return nil, err
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("rtlcheck: %s: no modules", path)
	}
	top := mods[len(mods)-1].Name
	m, warns, err := verilog.ElaborateHierarchyWarn(mods, top)
	diags := lint.ConvertWarnings(top, warns, cfg)
	if err != nil {
		diags = append(diags, lint.Diagnostic{
			Design: top,
			Rule:   "never-driven",
			Sev:    lint.Error,
			Msg:    err.Error(),
			Spans:  []rtl.SrcLoc{{File: path, Line: 1}},
		})
		return diags, nil
	}
	return append(diags, lint.Run(m, cfg).Diags...), nil
}

// runBounds implements -bounds: it prints the static cycle-bound table
// for each target design (and the hardware slice, for benchmark
// targets) and returns the exit code — 1 if any bound is not finite.
func runBounds(targets []string) int {
	if len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "usage: rtlcheck -bounds <target>...\ntargets: benchmark name %v, \"all\", \"testdesigns\", or a .v file\n", suite.Names())
		return 2
	}
	fmt.Printf("%-18s %12s %14s\n", "DESIGN", "MIN", "MAX")
	unbounded := 0
	for _, target := range targets {
		rows, err := boundsTarget(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		for _, r := range rows {
			max := fmt.Sprintf("%d", r.b.Max)
			if !r.b.MaxBounded {
				max = "+Inf"
				unbounded++
			}
			fmt.Printf("%-18s %12d %14s\n", r.name, r.b.Min, max)
			if !r.b.MaxBounded {
				fmt.Printf("  unbounded: %s\n", r.b.Reason)
				for _, uw := range r.b.Unbounded {
					fmt.Printf("  state %d (%s): %s\n", uw.State, uw.Kind, uw.Reason)
				}
			}
		}
	}
	if unbounded > 0 {
		fmt.Printf("%d design(s) without a finite upper bound\n", unbounded)
		return 1
	}
	return 0
}

type boundsRow struct {
	name string
	b    absint.CycleBounds
}

// boundsTarget resolves one target to designs and computes their static
// cycle bounds. Benchmark targets also get their full hardware slice —
// the module trace collection actually simulates.
func boundsTarget(target string) ([]boundsRow, error) {
	if strings.HasSuffix(target, ".v") {
		src, err := os.ReadFile(target)
		if err != nil {
			return nil, err
		}
		mods, err := verilog.ParseFileNamed(string(src), target)
		if err != nil {
			return nil, err
		}
		if len(mods) == 0 {
			return nil, fmt.Errorf("rtlcheck: %s: no modules", target)
		}
		m, err := verilog.ElaborateHierarchy(mods, mods[len(mods)-1].Name)
		if err != nil {
			return nil, err
		}
		return []boundsRow{{m.Name, absint.Bounds(m)}}, nil
	}
	var specs []string
	switch target {
	case "all":
		specs = suite.Names()
	case "testdesigns":
		hand, _ := testdesigns.HandFSM()
		return []boundsRow{
			{"toy", absint.Bounds(testdesigns.Toy().M)},
			{hand.Name, absint.Bounds(hand)},
		}, nil
	default:
		specs = []string{target}
	}
	var rows []boundsRow
	for _, name := range specs {
		spec, err := suite.ByName(name)
		if err != nil {
			return nil, err
		}
		m := spec.Build()
		rows = append(rows, boundsRow{spec.Name, absint.Bounds(m)})
		ins, err := instrument.Instrument(m)
		if err != nil {
			return nil, fmt.Errorf("rtlcheck: instrument %s: %w", spec.Name, err)
		}
		keep := make([]int, len(ins.Features))
		for i := range keep {
			keep[i] = i
		}
		sl, err := slice.Slice(ins, keep, slice.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("rtlcheck: slice %s: %w", spec.Name, err)
		}
		rows = append(rows, boundsRow{spec.Name + "/slice", absint.Bounds(sl.M)})
	}
	return rows, nil
}

func splitIDs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

func printCatalog() {
	fmt.Printf("%-18s %-8s %s\n", "RULE", "SEVERITY", "GUARDS AGAINST")
	for _, r := range lint.Rules() {
		fmt.Printf("%-18s %-8s %s\n", r.ID, r.Sev, r.Doc)
	}
}

// jsonDiag is the JSON shape of a diagnostic (severity as a string).
type jsonDiag struct {
	Design string   `json:"design"`
	Rule   string   `json:"rule"`
	Sev    string   `json:"severity"`
	Msg    string   `json:"msg"`
	Spans  []string `json:"spans,omitempty"`
}

func writeJSON(w *os.File, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{Design: d.Design, Rule: d.Rule, Sev: d.Sev.String(), Msg: d.Msg}
		for _, sp := range d.Spans {
			out[i].Spans = append(out[i].Spans, sp.String())
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
