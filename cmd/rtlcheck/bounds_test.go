package main

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestBoundsGolden pins `rtlcheck -bounds all` to the checked-in
// golden table: every benchmark and every slice keeps a finite,
// unchanged [MIN, MAX] interval. A legitimate bounds change (a design
// edit, a sharper analysis) regenerates the file with
//
//	go run ./cmd/rtlcheck -bounds all > cmd/rtlcheck/testdata/bounds_all.golden
//
// and the diff documents the shift in review.
func TestBoundsGolden(t *testing.T) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %12s %14s\n", "DESIGN", "MIN", "MAX")
	rows, err := boundsTarget("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.b.MaxBounded {
			t.Errorf("%s: no finite upper bound (%s)", r.name, r.b.Reason)
			continue
		}
		fmt.Fprintf(&sb, "%-18s %12d %14d\n", r.name, r.b.Min, r.b.Max)
	}
	golden, err := os.ReadFile("testdata/bounds_all.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != string(golden) {
		t.Errorf("bounds table drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}
