package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestHazardsAreFlagged(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "bad.go", `package p

import (
	"math/rand"
	"time"
)

func f() int64 {
	m := map[string]int{"a": 1, "b": 2}
	s := 0
	for _, v := range m {
		s += v
	}
	s += rand.Intn(3)
	return time.Now().Unix() + int64(s)
}
`)
	got, err := lintDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("findings = %d, want 3: %v", len(got), got)
	}
	wants := []string{"range over map", "rand.Intn", "time.Now"}
	for _, w := range wants {
		found := false
		for _, f := range got {
			if strings.Contains(f.msg, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentions %q: %v", w, got)
		}
	}
}

func TestAllowSuppressesAndLocalsDoNot(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "ok.go", `package p

import "sort"

// rand here is a local variable, not the math/rand package; time is a
// struct value: neither selector is a hazard.
type clock struct{}

func (clock) Now() int { return 0 }

func g() []string {
	m := map[string]int{"a": 1}
	var keys []string
	for k := range m { //detlint:allow sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var time clock
	_ = time.Now()
	return keys
}
`)
	got, err := lintDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
}

func TestUnseededShufflePermFlagged(t *testing.T) {
	dir := t.TempDir()
	// The import alias must not hide the global-source permutation, and
	// a seeded *rand.Rand's methods must stay clean.
	writeFile(t, dir, "shuf.go", `package p

import mrand "math/rand"

func f(xs []int) []int {
	mrand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	_ = mrand.Perm(4)
	r := mrand.New(mrand.NewSource(7))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	_ = r.Perm(4)
	//detlint:allow deterministic here: single-threaded tool setup
	_ = mrand.Perm(2)
	return xs
}
`)
	got, err := lintDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("findings = %d, want 2 (aliased Shuffle + Perm): %v", len(got), got)
	}
	for _, f := range got {
		if !strings.Contains(f.msg, "permutes via the shared global source") {
			t.Errorf("unexpected finding: %v", f)
		}
	}
}

func TestTestFilesSkippedByDefault(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a_test.go", `package p

import "time"

func h() int64 { return time.Now().Unix() }
`)
	got, err := lintDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("test file was linted without -tests: %v", got)
	}
	got, err = lintDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("findings with -tests = %v, want 1", got)
	}
}
