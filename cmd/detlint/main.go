// Command detlint is a custom vet pass for replay determinism. The
// experiment pipeline's claim — byte-identical results for a given seed
// across runs and worker counts — dies quietly when nondeterminism
// sneaks into a result path, so CI runs this linter over the
// replay-critical packages alongside go vet.
//
// It flags four hazard classes:
//
//   - ranging over a map: iteration order is randomized per run, so any
//     result assembled in range order (appends, string building,
//     first-wins selection) differs between replays;
//   - time.Now: wall-clock values embedded in results or used to make
//     decisions diverge across runs;
//   - math/rand package-level draws (rand.Intn, rand.Float64, ...): the
//     global source's stream is shared process-wide, so draws interleave
//     differently when goroutine schedules change; draws must come from
//     an explicitly seeded *rand.Rand;
//   - unseeded rand.Shuffle / rand.Perm: a permutation drawn from the
//     shared global source silently reorders whatever it touches (job
//     lists, worker assignments), which corrupts replay even when no
//     individual value is random. Detected through import aliases too —
//     unlike scalar draws, a renamed import does not hide a shuffle.
//
// A finding is suppressed by a `//detlint:allow <reason>` comment on
// the same line or the line above — used where the hazard is neutralized
// (e.g. a map range whose results are sorted immediately afterwards).
//
// Usage:
//
//	detlint [-tests] <package-dir>|./... ...
//
// The tool is intentionally stdlib-only (go/parser + go/types with a
// lenient importer): it typechecks each package in isolation, tolerating
// unresolved imports, which is enough to recognize map types declared or
// built locally.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	tests := flag.Bool("tests", false, "also lint _test.go files")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: detlint [-tests] <package-dir>|./... ...")
		os.Exit(2)
	}
	dirs, err := expandTargets(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := 0
	for _, dir := range dirs {
		fs, err := lintDir(dir, *tests)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, f := range fs {
			fmt.Println(f)
			findings++
		}
	}
	if findings > 0 {
		fmt.Printf("detlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// expandTargets resolves "./..." into every directory containing Go
// files; other arguments are taken as package directories verbatim.
func expandTargets(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, a := range args {
		root, rec := strings.CutSuffix(a, "/...")
		if !rec {
			add(filepath.Clean(a))
			continue
		}
		err := filepath.WalkDir(filepath.Clean(root), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// finding is one located hazard.
type finding struct {
	pos token.Position
	msg string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d: %s", f.pos.Filename, f.pos.Line, f.msg)
}

// lenientImporter satisfies every import with an empty placeholder
// package: cross-package names typecheck as invalid (and are skipped),
// while locally built map types still resolve — all this pass needs.
type lenientImporter struct{ pkgs map[string]*types.Package }

func (im *lenientImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	name := path[strings.LastIndexByte(path, '/')+1:]
	p := types.NewPackage(path, name)
	p.MarkComplete()
	if im.pkgs == nil {
		im.pkgs = map[string]*types.Package{}
	}
	im.pkgs[path] = p
	return p, nil
}

func lintDir(dir string, tests bool) ([]finding, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Lenient typecheck: errors (unresolved cross-package references)
	// are expected and ignored; Info.Types still covers the locally
	// inferable expressions, which is where map ranges live.
	conf := types.Config{Importer: &lenientImporter{}, Error: func(error) {}}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}, Uses: map[*ast.Ident]types.Object{}}
	conf.Check(dir, fset, files, info) //detlint:allow error intentionally ignored (lenient check)

	var out []finding
	for _, f := range files {
		out = append(out, lintFile(fset, f, info)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out, nil
}

func lintFile(fset *token.FileSet, f *ast.File, info *types.Info) []finding {
	allowed := allowLines(fset, f)
	randDraws := map[string]bool{
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true,
		"ExpFloat64": true, "NormFloat64": true, "Seed": true,
	}
	// mathRandNames maps every file-local name of math/rand — the plain
	// "rand" or an import alias — so the permutation hazard below cannot
	// be hidden by renaming the import.
	importsMathRand := false
	mathRandNames := map[string]bool{}
	for _, imp := range f.Imports {
		if p, _ := strconv.Unquote(imp.Path.Value); p == "math/rand" || p == "math/rand/v2" {
			importsMathRand = true
			name := "rand"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			mathRandNames[name] = true
		}
	}

	var out []finding
	report := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return
		}
		out = append(out, finding{pos: p, msg: msg})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.For,
						"range over map: iteration order is randomized per run; sort the keys (or annotate //detlint:allow if order provably cannot reach results)")
				}
			}
		case *ast.SelectorExpr:
			pkg, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			// Only package-qualified selectors: a local variable named
			// `rand` or `time` resolves to a non-package object.
			if obj, bound := info.Uses[pkg]; bound {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			if pkg.Name == "time" && n.Sel.Name == "Now" {
				report(n.Pos(),
					"time.Now: wall-clock reads diverge between replays; thread timestamps in from the caller")
			}
			// Unseeded permutations: package-level Shuffle/Perm reorder
			// whole collections through the shared global source — replay
			// poison even when no single value is random. Matched by the
			// import's actual path, so aliasing cannot hide them.
			if (n.Sel.Name == "Shuffle" || n.Sel.Name == "Perm") && mathRandNames[pkg.Name] {
				report(n.Pos(), fmt.Sprintf(
					"rand.%s permutes via the shared global source: element order differs per run; use an explicitly seeded *rand.Rand", n.Sel.Name))
				return true
			}
			if importsMathRand && pkg.Name == "rand" && randDraws[n.Sel.Name] {
				report(n.Pos(),
					fmt.Sprintf("rand.%s draws from the shared global source; use an explicitly seeded *rand.Rand", n.Sel.Name))
			}
		}
		return true
	})
	return out
}

// allowLines collects the lines covered by //detlint:allow comments:
// the comment's own line and the one below it (so an annotation can sit
// on the flagged line or immediately above).
func allowLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//detlint:allow") {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}
