// Command dvfsim runs the paper's evaluation experiments and prints
// their tables.
//
// Usage:
//
//	dvfsim [-seed N] [-quick] [-workers N] [-list] [experiment ...]
//
// With no experiment arguments, every table and figure is regenerated
// in paper order. Experiment IDs: table3, table4, fig2, fig3, fig10,
// fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18, fig19,
// casestudy.
//
// Job-level RTL simulation fans out across -workers goroutines
// (default: GOMAXPROCS); results are deterministic regardless of the
// worker count. -engine selects the RTL engine (compiled, event,
// interp, batch — batch packs up to 64 same-design jobs into one
// bit-sliced simulation — or native, which runs the pre-generated
// straight-line code in internal/rtl/native and falls back to
// compiled for unregistered netlists). -cachedir (or REPRO_CACHE_DIR) enables the persistent trace
// cache: a re-run with unchanged netlists and workloads replays every
// simulation from disk and reports "jobs simulated: 0".
// -cpuprofile/-memprofile write pprof profiles of the run for
// "Profiling the simulator" in README.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/rtl"
	"repro/internal/tracecache"
)

func main() {
	seed := flag.Int64("seed", 42, "workload generation seed")
	quick := flag.Bool("quick", false, "trim workloads for a fast run")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	charts := flag.Bool("charts", false, "render ASCII plots for figure experiments")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	workers := flag.Int("workers", 0, "parallel job-simulation workers (0 = GOMAXPROCS)")
	engine := flag.String("engine", "", "RTL engine: compiled, event, interp, batch, or native (default: compiled, or $REPRO_ENGINE)")
	cacheDir := flag.String("cachedir", os.Getenv("REPRO_CACHE_DIR"),
		"persistent trace cache directory (default: $REPRO_CACHE_DIR; empty disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *list {
		for _, id := range exp.ExperimentIDs {
			fmt.Println(id)
		}
		return
	}

	core.SetWorkers(*workers)
	if *engine != "" {
		e, err := rtl.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(2)
		}
		if err := rtl.SetDefaultEngine(e); err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(2)
		}
	}
	var cache *tracecache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = tracecache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
		core.SetTraceCache(cache)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	lab := exp.NewLab(*seed)
	lab.Quick = *quick

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.ExperimentIDs
	}
	start := time.Now() //detlint:allow wall-clock progress reporting only; results are seed-driven
	// Train all benchmarks up front, in parallel, so the serial
	// experiment loop below replays cached traces.
	if err := lab.Warm(); err != nil {
		fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
		os.Exit(1)
	}
	for _, id := range ids {
		t, err := exp.Run(lab, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		if *charts {
			chart, err := exp.Chart(lab, id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
				os.Exit(1)
			}
			if chart != "" {
				fmt.Println(chart)
			}
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("completed %d experiment(s) in %s\n", len(ids), time.Since(start).Round(time.Millisecond))
	if cache != nil {
		fmt.Printf("trace cache [%s]: %s; ", cache.Dir(), cache.Stats())
	}
	fmt.Printf("jobs batched: %d; jobs simulated: %d\n", core.BatchedJobs(), core.SimulatedJobs())

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
	}
}
