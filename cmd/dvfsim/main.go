// Command dvfsim runs the paper's evaluation experiments and prints
// their tables.
//
// Usage:
//
//	dvfsim [-seed N] [-quick] [-list] [experiment ...]
//
// With no experiment arguments, every table and figure is regenerated
// in paper order. Experiment IDs: table3, table4, fig2, fig3, fig10,
// fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18, fig19,
// casestudy.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/exp"
)

func main() {
	seed := flag.Int64("seed", 42, "workload generation seed")
	quick := flag.Bool("quick", false, "trim workloads for a fast run")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	charts := flag.Bool("charts", false, "render ASCII plots for figure experiments")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	if *list {
		for _, id := range exp.ExperimentIDs {
			fmt.Println(id)
		}
		return
	}

	lab := exp.NewLab(*seed)
	lab.Quick = *quick

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.ExperimentIDs
	}
	start := time.Now()
	for _, id := range ids {
		t, err := exp.Run(lab, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		if *charts {
			chart, err := exp.Chart(lab, id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
				os.Exit(1)
			}
			if chart != "" {
				fmt.Println(chart)
			}
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dvfsim: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("completed %d experiment(s) in %s\n", len(ids), time.Since(start).Round(time.Millisecond))
}
