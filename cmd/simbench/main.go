// Command simbench measures the simulation engine and writes a
// machine-readable BENCH_sim.json so the performance trajectory can be
// tracked across changes.
//
// Usage:
//
//	simbench [-out BENCH_sim.json] [-workers N] [-seed N] [-reps N]
//
// It reports three things:
//
//  1. engine throughput (Mevals/s, ns/cycle) for the compiled engine
//     and the interpreter on the Toy design and on a real accelerator,
//  2. CollectTraces wall-clock serial vs. fanned out across workers,
//  3. the wall-clock of warming the full (quick) experiment lab.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/accel"
	"repro/internal/accel/stencil"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/rtl"
	"repro/internal/testdesigns"
)

// EngineResult is one engine×design throughput measurement.
type EngineResult struct {
	Design     string  `json:"design"`
	Engine     string  `json:"engine"`
	Nodes      int     `json:"nodes"`
	Cycles     uint64  `json:"cycles"`
	Seconds    float64 `json:"seconds"`
	MevalsPerS float64 `json:"mevals_per_s"`
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// TraceResult reports the job fan-out measurement.
type TraceResult struct {
	Benchmark string  `json:"benchmark"`
	Jobs      int     `json:"jobs"`
	Workers   int     `json:"workers"`
	SerialS   float64 `json:"serial_s"`
	ParallelS float64 `json:"parallel_s"`
	Speedup   float64 `json:"speedup"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Generated       string         `json:"generated"`
	Workers         int            `json:"workers"`
	Engines         []EngineResult `json:"engines"`
	CompiledSpeedup float64        `json:"compiled_speedup"`
	CollectTraces   TraceResult    `json:"collect_traces"`
	SuiteWallclockS float64        `json:"suite_wallclock_s"`
}

// measure runs fn reps times and returns total cycles and seconds.
func measure(reps int, fn func() (uint64, error)) (uint64, float64, error) {
	var cycles uint64
	start := time.Now() //detlint:allow simbench measures wall-clock throughput by design
	for i := 0; i < reps; i++ {
		c, err := fn()
		if err != nil {
			return 0, 0, err
		}
		cycles += c
	}
	return cycles, time.Since(start).Seconds(), nil
}

func engineResult(design, engine string, nodes int, cycles uint64, secs float64) EngineResult {
	return EngineResult{
		Design:     design,
		Engine:     engine,
		Nodes:      nodes,
		Cycles:     cycles,
		Seconds:    secs,
		MevalsPerS: float64(cycles*uint64(nodes)) / secs / 1e6,
		NsPerCycle: secs * 1e9 / float64(cycles),
	}
}

func run() error {
	out := flag.String("out", "BENCH_sim.json", "output path for the JSON report")
	workers := flag.Int("workers", 0, "parallel job-simulation workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "workload generation seed")
	reps := flag.Int("reps", 200, "jobs per engine measurement")
	flag.Parse()

	core.SetWorkers(*workers)
	rep := Report{Generated: time.Now().UTC().Format(time.RFC3339), Workers: core.Workers()} //detlint:allow simbench measures wall-clock throughput by design

	// 1. Engine throughput: Toy and one real accelerator, both engines.
	toy := testdesigns.Toy()
	items := make([]uint64, 100)
	for i := range items {
		items[i] = testdesigns.ToyItem(i%2 == 0, 20)
	}
	job := testdesigns.ToyJob(items)
	toyRun := func(s *rtl.Sim) func() (uint64, error) {
		return func() (uint64, error) {
			s.Reset()
			if err := s.LoadMem("in", job); err != nil {
				return 0, err
			}
			return s.Run(1 << 20)
		}
	}
	spec := stencil.Spec()
	sm := spec.Build()
	sjob := spec.TestJobs(3)[0]
	accelRun := func(s *rtl.Sim) func() (uint64, error) {
		return func() (uint64, error) { return accel.RunJob(s, sjob, spec.MaxTicks) }
	}
	for _, e := range []struct {
		design string
		m      *rtl.Module
		nodes  int
		mk     func(*rtl.Module) *rtl.Sim
		engine string
		runner func(*rtl.Sim) func() (uint64, error)
	}{
		{"toy", toy.M, toy.M.NumNodes(), rtl.NewSim, "compiled", toyRun},
		{"toy", toy.M, toy.M.NumNodes(), rtl.NewInterpSim, "interp", toyRun},
		{spec.Name, sm, sm.NumNodes(), rtl.NewSim, "compiled", accelRun},
		{spec.Name, sm, sm.NumNodes(), rtl.NewInterpSim, "interp", accelRun},
	} {
		cycles, secs, err := measure(*reps, e.runner(e.mk(e.m)))
		if err != nil {
			return err
		}
		rep.Engines = append(rep.Engines, engineResult(e.design, e.engine, e.nodes, cycles, secs))
	}
	rep.CompiledSpeedup = rep.Engines[0].MevalsPerS / rep.Engines[1].MevalsPerS

	// 2. CollectTraces fan-out: serial vs configured workers.
	pred, err := core.Train(spec, core.Options{Seed: *seed})
	if err != nil {
		return err
	}
	jobs := spec.TestJobs(*seed + 1)
	core.SetWorkers(1)
	start := time.Now() //detlint:allow simbench measures wall-clock throughput by design
	serialTr, err := pred.CollectTraces(jobs)
	if err != nil {
		return err
	}
	serialS := time.Since(start).Seconds()
	core.SetWorkers(*workers)
	start = time.Now() //detlint:allow simbench measures wall-clock throughput by design
	parTr, err := pred.CollectTraces(jobs)
	if err != nil {
		return err
	}
	parS := time.Since(start).Seconds()
	if len(serialTr) != len(parTr) {
		return fmt.Errorf("simbench: trace count mismatch %d vs %d", len(serialTr), len(parTr))
	}
	rep.CollectTraces = TraceResult{
		Benchmark: spec.Name,
		Jobs:      len(jobs),
		Workers:   core.Workers(),
		SerialS:   serialS,
		ParallelS: parS,
		Speedup:   serialS / parS,
	}

	// 3. Full quick-lab warm-up wall-clock (train + trace all seven
	// benchmarks), the end-to-end number the experiments feel.
	lab := exp.NewLab(*seed)
	lab.Quick = true
	start = time.Now() //detlint:allow simbench measures wall-clock throughput by design
	if err := lab.Warm(); err != nil {
		return err
	}
	rep.SuiteWallclockS = time.Since(start).Seconds()

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("simbench: compiled %.0f Mevals/s (%.2fx interp), traces %.2fx with %d workers, quick suite %.1fs -> %s\n",
		rep.Engines[0].MevalsPerS, rep.CompiledSpeedup,
		rep.CollectTraces.Speedup, rep.CollectTraces.Workers, rep.SuiteWallclockS, *out)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
}
