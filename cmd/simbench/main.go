// Command simbench measures the simulation engines and writes a
// machine-readable BENCH_sim.json so the performance trajectory can be
// tracked across changes.
//
// Usage:
//
//	simbench [-out BENCH_sim.json] [-workers N] [-seed N] [-reps N]
//	         [-designs a,b,...] [-engine E] [-warm] [-cachedir dir]
//
// It reports four things:
//
//  1. engine throughput (Mevals/s, ns/cycle) for all five engines —
//     interp, compiled, event, native (pre-generated straight-line
//     code), and batch (measured as 64 lanes of the same job,
//     aggregate) — on the Toy design and on every benchmark of the
//     suite, with per-design speedup ratios. Toy has no generated
//     native sim by design, so its native row measures the compiled
//     fallback,
//  2. CollectTraces wall-clock swept across worker counts
//     (1, 2, 4, 8, capped at GOMAXPROCS) under the compiled, batch,
//     and native engines (retraining per engine, since Train binds
//     the predictor's simulators to the engine current at that time),
//  3. trace-collection throughput (instrumented design + hardware
//     slice per job, the work core.CollectTraces does) per benchmark:
//     scalar compiled jobs/s vs batched jobs/s vs native jobs/s and
//     their ratios,
//  4. the wall-clock of warming the full (quick) experiment lab
//     (skipped with -warm=false).
//
// -designs restricts sections 1 and 3 to a comma-separated subset of
// benchmarks (CI smoke runs use this). -engine sets the process-wide
// default RTL engine, which section 4 (and any cache-miss simulation)
// picks up.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/absint"
	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/instrument"
	"repro/internal/rtl"
	"repro/internal/slice"
	"repro/internal/suite"
	"repro/internal/testdesigns"
	"repro/internal/tracecache"
)

// EngineResult is one engine's throughput on one design.
type EngineResult struct {
	Engine     string  `json:"engine"`
	Cycles     uint64  `json:"cycles"`
	Seconds    float64 `json:"seconds"`
	MevalsPerS float64 `json:"mevals_per_s"`
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// DesignResult groups the three engines' numbers on one design plus
// the headline ratios.
type DesignResult struct {
	Design  string         `json:"design"`
	Nodes   int            `json:"nodes"`
	Engines []EngineResult `json:"engines"`
	// Speedup ratios in Mevals/s (equivalently wall-clock, same work).
	CompiledVsInterp float64 `json:"compiled_vs_interp"`
	EventVsCompiled  float64 `json:"event_vs_compiled"`
	EventVsInterp    float64 `json:"event_vs_interp"`
	// NativeVsCompiled compares the pre-generated native code against
	// the compiled instruction stream on the same single job. For
	// designs without a registered native sim (toy) the native row is
	// the compiled fallback and this ratio sits near 1.
	NativeVsCompiled float64 `json:"native_vs_compiled"`
	// BatchVsCompiled compares aggregate batch throughput (64 lanes
	// of the same job) against one scalar compiled run of it.
	BatchVsCompiled float64 `json:"batch_vs_compiled"`
}

// TraceResult reports the job fan-out measurement at one worker count
// under one engine.
type TraceResult struct {
	Benchmark string  `json:"benchmark"`
	Engine    string  `json:"engine"`
	Jobs      int     `json:"jobs"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	// Speedup is relative to the 1-worker entry of the same engine's
	// sweep.
	Speedup float64 `json:"speedup"`
}

// ThroughputResult is one benchmark's trace-collection throughput:
// scalar compiled engine vs the 64-lane batch engine on the same
// work (one instrumented full-design job plus one slice job).
type ThroughputResult struct {
	Benchmark       string  `json:"benchmark"`
	ScalarJobsPerS  float64 `json:"scalar_jobs_per_s"`
	BatchJobsPerS   float64 `json:"batch_jobs_per_s"`
	BatchVsCompiled float64 `json:"batch_vs_compiled"`
	// NativeJobsPerS measures the same per-job work on the generated
	// native sims — the single-job latency story, where batch's lane
	// amortization does not apply.
	NativeJobsPerS   float64 `json:"native_jobs_per_s"`
	NativeVsCompiled float64 `json:"native_vs_compiled"`
}

// PruneResult records the static win of absint pruning on one
// benchmark: compiled instructions per cycle for the instrumented full
// design and its hardware slice, unpruned vs pruned. Every engine's
// per-cycle work scales with this stream.
type PruneResult struct {
	Benchmark        string  `json:"benchmark"`
	FullInstr        int     `json:"full_instr"`
	FullInstrPruned  int     `json:"full_instr_pruned"`
	FullReductionPct float64 `json:"full_reduction_pct"`
	SliceInstr       int     `json:"slice_instr"`
	SliceInstrPruned int     `json:"slice_instr_pruned"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Generated       string             `json:"generated"`
	MaxWorkers      int                `json:"max_workers"`
	Designs         []DesignResult     `json:"designs"`
	Prune           []PruneResult      `json:"prune"`
	WorkerSweep     []TraceResult      `json:"worker_sweep"`
	TraceThroughput []ThroughputResult `json:"trace_throughput"`
	SuiteWallclockS float64            `json:"suite_wallclock_s"`
}

// engineOrder fixes the measurement and report order; interp first so
// every ratio reads engines[i] vs engines[0].
var engineOrder = []rtl.Engine{rtl.EngineInterp, rtl.EngineCompiled, rtl.EngineEvent, rtl.EngineNative}

// measurePasses splits each engine measurement into this many timed
// passes and reports the fastest one, so a transient background blip
// hitting one engine's slice of wall-clock does not skew the ratios.
const measurePasses = 3

// measure runs fn reps times in measurePasses timed passes and
// returns the cycles and seconds of the fastest pass.
func measure(reps int, fn func() (uint64, error)) (uint64, float64, error) {
	per := reps / measurePasses
	if per < 1 {
		per = 1
	}
	var bestCycles uint64
	bestSecs := 0.0
	for p := 0; p < measurePasses; p++ {
		var cycles uint64
		start := time.Now() //detlint:allow simbench measures wall-clock throughput by design
		for i := 0; i < per; i++ {
			c, err := fn()
			if err != nil {
				return 0, 0, err
			}
			cycles += c
		}
		secs := time.Since(start).Seconds()
		if bestSecs == 0 || secs*float64(bestCycles) < bestSecs*float64(cycles) {
			bestCycles, bestSecs = cycles, secs
		}
	}
	return bestCycles, bestSecs, nil
}

// measureDesign runs one job on a design under the four scalar
// engines, then the same job on all 64 lanes of the batch engine
// (whose cycles and Mevals/s are therefore aggregate numbers).
func measureDesign(design string, m *rtl.Module, job accel.Job, maxTicks uint64, reps int,
	runner func(*rtl.Sim) func() (uint64, error)) (DesignResult, error) {
	dr := DesignResult{Design: design, Nodes: m.NumNodes()}
	p := rtl.Compile(m)
	for _, eng := range engineOrder {
		var s *rtl.Sim
		switch eng {
		case rtl.EngineInterp:
			s = rtl.NewInterpSim(m)
		case rtl.EngineCompiled:
			s = p.NewSim()
		case rtl.EngineEvent:
			s = p.NewEventSim()
		case rtl.EngineNative:
			s = rtl.NewSimEngine(m, rtl.EngineNative)
		}
		cycles, secs, err := measure(reps, runner(s))
		if err != nil {
			return dr, fmt.Errorf("%s/%s: %w", design, eng, err)
		}
		dr.Engines = append(dr.Engines, EngineResult{
			Engine:     string(eng),
			Cycles:     cycles,
			Seconds:    secs,
			MevalsPerS: float64(cycles*uint64(m.NumNodes())) / secs / 1e6,
			NsPerCycle: secs * 1e9 / float64(cycles),
		})
	}
	jobs := make([]accel.Job, rtl.MaxBatchLanes)
	for l := range jobs {
		jobs[l] = job
	}
	bs := rtl.NewBatchSim(m, len(jobs))
	batchReps := reps / len(jobs)
	if batchReps < measurePasses {
		batchReps = measurePasses
	}
	cycles, secs, err := measure(batchReps, func() (uint64, error) {
		ticks, errs := accel.RunJobs(bs, jobs, maxTicks)
		total := uint64(0)
		for l, e := range errs {
			if e != nil {
				return 0, e
			}
			total += ticks[l]
		}
		return total, nil
	})
	if err != nil {
		return dr, fmt.Errorf("%s/batch: %w", design, err)
	}
	dr.Engines = append(dr.Engines, EngineResult{
		Engine:     string(rtl.EngineBatch),
		Cycles:     cycles,
		Seconds:    secs,
		MevalsPerS: float64(cycles*uint64(m.NumNodes())) / secs / 1e6,
		NsPerCycle: secs * 1e9 / float64(cycles),
	})
	interp, compiled, event := dr.Engines[0].MevalsPerS, dr.Engines[1].MevalsPerS, dr.Engines[2].MevalsPerS
	dr.CompiledVsInterp = compiled / interp
	dr.EventVsCompiled = event / compiled
	dr.EventVsInterp = event / interp
	dr.NativeVsCompiled = dr.Engines[3].MevalsPerS / compiled
	dr.BatchVsCompiled = dr.Engines[4].MevalsPerS / compiled
	return dr, nil
}

func run() error {
	out := flag.String("out", "BENCH_sim.json", "output path for the JSON report")
	workers := flag.Int("workers", 0, "max parallel job-simulation workers for the sweep (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "workload generation seed")
	reps := flag.Int("reps", 60, "jobs per engine measurement")
	designs := flag.String("designs", "", "comma-separated benchmark subset for the throughput sections (default: all)")
	engine := flag.String("engine", "", "process-wide default RTL engine: compiled, event, interp, batch, or native")
	warm := flag.Bool("warm", true, "measure the quick-lab warm-up wall-clock")
	cacheDir := flag.String("cachedir", os.Getenv("REPRO_CACHE_DIR"),
		"persistent trace cache directory (default: $REPRO_CACHE_DIR; empty disables)")
	flag.Parse()

	if *engine != "" {
		e, err := rtl.ParseEngine(*engine)
		if err != nil {
			return err
		}
		if err := rtl.SetDefaultEngine(e); err != nil {
			return err
		}
	}
	specs := suite.All()
	if *designs != "" {
		var picked []accel.Spec
		for _, name := range strings.Split(*designs, ",") {
			spec, err := suite.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			picked = append(picked, spec)
		}
		specs = picked
	}

	if *cacheDir != "" {
		c, err := tracecache.Open(*cacheDir)
		if err != nil {
			return err
		}
		core.SetTraceCache(c)
	}
	maxWorkers := *workers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	rep := Report{Generated: time.Now().UTC().Format(time.RFC3339), MaxWorkers: maxWorkers} //detlint:allow simbench measures wall-clock throughput by design

	// 1. Engine throughput: Toy plus every benchmark, three engines each.
	toy := testdesigns.Toy()
	items := make([]uint64, 100)
	for i := range items {
		items[i] = testdesigns.ToyItem(i%2 == 0, 20)
	}
	toyJob := testdesigns.ToyJob(items)
	toyBatchJob := accel.Job{Mems: map[string][]uint64{"in": toyJob}}
	dr, err := measureDesign("toy", toy.M, toyBatchJob, 1<<20, *reps, func(s *rtl.Sim) func() (uint64, error) {
		return func() (uint64, error) {
			s.Reset()
			if err := s.LoadMem("in", toyJob); err != nil {
				return 0, err
			}
			return s.Run(1 << 20)
		}
	})
	if err != nil {
		return err
	}
	rep.Designs = append(rep.Designs, dr)
	for _, spec := range specs {
		spec := spec
		m := spec.Build()
		job := spec.TestJobs(3)[0]
		dr, err := measureDesign(spec.Name, m, job, spec.MaxTicks, *reps, func(s *rtl.Sim) func() (uint64, error) {
			return func() (uint64, error) { return accel.RunJob(s, job, spec.MaxTicks) }
		})
		if err != nil {
			return err
		}
		rep.Designs = append(rep.Designs, dr)
	}

	// 1b. Static pruning win: compiled instructions per cycle, unpruned
	// vs absint-pruned, for each benchmark's instrumented design and its
	// hardware slice.
	for _, spec := range specs {
		pr, err := measurePrune(spec)
		if err != nil {
			return err
		}
		rep.Prune = append(rep.Prune, pr)
	}

	// 2. CollectTraces fan-out: sweep worker counts 1, 2, 4, 8 (capped
	// at GOMAXPROCS) under the compiled, batch, and native engines.
	// Train binds the predictor's simulators to the engine current at
	// train time, so each engine gets its own (cheap, cache-served)
	// Train call before its sweep.
	spec, err := suite.ByName("stencil")
	if err != nil {
		return err
	}
	jobs := spec.TestJobs(*seed + 1)
	counts := []int{}
	for w := 1; w < maxWorkers && w < 8; w *= 2 {
		counts = append(counts, w)
	}
	if cap := min(maxWorkers, 8); len(counts) == 0 || counts[len(counts)-1] != cap {
		counts = append(counts, cap)
	}
	// The sweep times real simulation: detach the cache so every pass
	// actually runs RTL, then restore it for the lab warm-up below.
	sweepCache := core.TraceCache()
	sweepDefault := rtl.DefaultEngine()
	for _, eng := range []rtl.Engine{rtl.EngineCompiled, rtl.EngineBatch, rtl.EngineNative} {
		if err := rtl.SetDefaultEngine(eng); err != nil {
			return err
		}
		core.SetTraceCache(sweepCache)
		pred, err := core.Train(spec, core.Options{Seed: *seed})
		if err != nil {
			return err
		}
		core.SetTraceCache(nil)
		var oneWorkerS float64
		for _, w := range counts {
			core.SetWorkers(w)
			start := time.Now() //detlint:allow simbench measures wall-clock throughput by design
			if _, err := pred.CollectTraces(jobs); err != nil {
				return err
			}
			secs := time.Since(start).Seconds()
			if w == counts[0] {
				oneWorkerS = secs
			}
			rep.WorkerSweep = append(rep.WorkerSweep, TraceResult{
				Benchmark: spec.Name,
				Engine:    string(eng),
				Jobs:      len(jobs),
				Workers:   w,
				Seconds:   secs,
				Speedup:   oneWorkerS / secs,
			})
		}
	}
	if err := rtl.SetDefaultEngine(sweepDefault); err != nil {
		return err
	}
	core.SetWorkers(*workers)
	core.SetTraceCache(sweepCache)

	// 3. Trace-collection throughput per benchmark: the work one
	// CollectTraces job does (instrumented full design + hardware
	// slice), scalar compiled vs 64 batch lanes, in jobs/s.
	for _, spec := range specs {
		tr, err := measureTraceThroughput(spec)
		if err != nil {
			return err
		}
		rep.TraceThroughput = append(rep.TraceThroughput, tr)
	}

	// 4. Full quick-lab warm-up wall-clock (train + trace all seven
	// benchmarks), the end-to-end number the experiments feel.
	if *warm {
		lab := exp.NewLab(*seed)
		lab.Quick = true
		start := time.Now() //detlint:allow simbench measures wall-clock throughput by design
		if err := lab.Warm(); err != nil {
			return err
		}
		rep.SuiteWallclockS = time.Since(start).Seconds()
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	twoX := 0
	nativeThreeX := 0
	for _, d := range rep.Designs {
		if d.Design == "toy" {
			continue
		}
		if d.EventVsCompiled >= 2 {
			twoX++
		}
		if d.NativeVsCompiled >= 3 {
			nativeThreeX++
		}
	}
	fourX := 0
	for _, tr := range rep.TraceThroughput {
		if tr.BatchVsCompiled >= 4 {
			fourX++
		}
	}
	last := rep.WorkerSweep[len(rep.WorkerSweep)-1]
	fmt.Printf("simbench: event>=2x compiled on %d/%d benchmarks, native>=3x compiled on %d/%d, batch>=4x compiled traces on %d/%d, traces %.2fx with %d workers (%s), quick suite %.1fs -> %s\n",
		twoX, len(rep.Designs)-1, nativeThreeX, len(rep.Designs)-1, fourX, len(rep.TraceThroughput), last.Speedup, last.Workers, last.Engine, rep.SuiteWallclockS, *out)
	fmt.Printf("jobs batched: %d; jobs simulated: %d\n", core.BatchedJobs(), core.SimulatedJobs())
	return nil
}

// measurePrune compiles each benchmark's instrumented design and slice
// with and without absint pruning and records the instruction counts.
func measurePrune(spec accel.Spec) (PruneResult, error) {
	ins, err := instrument.Instrument(spec.Build())
	if err != nil {
		return PruneResult{}, err
	}
	keep := make([]int, len(ins.Features))
	kept := make([]int, len(ins.Features))
	for i, f := range ins.Features {
		keep[i] = f.Witness
		kept[i] = i
	}
	pm, _ := absint.Prune(ins.M, keep)
	plain := slice.DefaultOptions()
	plain.Prune = false
	slP, err := slice.Slice(ins, kept, plain)
	if err != nil {
		return PruneResult{}, err
	}
	slA, err := slice.Slice(ins, kept, slice.DefaultOptions())
	if err != nil {
		return PruneResult{}, err
	}
	fi := rtl.Compile(ins.M).Instructions()
	pi := rtl.Compile(pm).Instructions()
	return PruneResult{
		Benchmark:        spec.Name,
		FullInstr:        fi,
		FullInstrPruned:  pi,
		FullReductionPct: 100 * float64(fi-pi) / float64(fi),
		SliceInstr:       rtl.Compile(slP.M).Instructions(),
		SliceInstrPruned: rtl.Compile(slA.M).Instructions(),
	}, nil
}

// measureTraceThroughput times the per-job work of CollectTraces —
// one instrumented full-design simulation plus one slice simulation —
// on the scalar compiled engine and as 64 batch lanes, best of three
// passes each.
func measureTraceThroughput(spec accel.Spec) (ThroughputResult, error) {
	ins, err := instrument.Instrument(spec.Build())
	if err != nil {
		return ThroughputResult{}, err
	}
	keep := make([]int, len(ins.Features))
	for i := range keep {
		keep[i] = i
	}
	sl, err := slice.Slice(ins, keep, slice.DefaultOptions())
	if err != nil {
		return ThroughputResult{}, err
	}
	job := spec.TestJobs(3)[0]
	jobs := make([]accel.Job, rtl.MaxBatchLanes)
	for l := range jobs {
		jobs[l] = job
	}
	fullS := rtl.NewSimEngine(ins.M, rtl.EngineCompiled)
	sliceS := rtl.NewSimEngine(sl.M, rtl.EngineCompiled)
	// The sections before this one leave a large heap behind; collect
	// now so background GC does not tax one engine's timed window.
	runtime.GC()
	const scalarReps = 24
	_, scalarSecs, err := measure(scalarReps, func() (uint64, error) {
		for _, s := range []*rtl.Sim{fullS, sliceS} {
			if _, err := accel.RunJob(s, job, spec.MaxTicks); err != nil {
				return 0, err
			}
		}
		return 1, nil
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	fbs := rtl.NewBatchSim(ins.M, len(jobs))
	sbs := rtl.NewBatchSim(sl.M, len(jobs))
	_, batchSecs, err := measure(measurePasses, func() (uint64, error) {
		for _, bs := range []*rtl.BatchSim{fbs, sbs} {
			_, errs := accel.RunJobs(bs, jobs, spec.MaxTicks)
			for _, e := range errs {
				if e != nil {
					return 0, e
				}
			}
		}
		return 1, nil
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	nativeFull := rtl.NewSimEngine(ins.M, rtl.EngineNative)
	nativeSlice := rtl.NewSimEngine(sl.M, rtl.EngineNative)
	_, nativeSecs, err := measure(scalarReps, func() (uint64, error) {
		for _, s := range []*rtl.Sim{nativeFull, nativeSlice} {
			if _, err := accel.RunJob(s, job, spec.MaxTicks); err != nil {
				return 0, err
			}
		}
		return 1, nil
	})
	if err != nil {
		return ThroughputResult{}, err
	}
	scalarJPS := float64(scalarReps/measurePasses) / scalarSecs
	batchJPS := float64(len(jobs)) / batchSecs
	nativeJPS := float64(scalarReps/measurePasses) / nativeSecs
	return ThroughputResult{
		Benchmark:        spec.Name,
		ScalarJobsPerS:   scalarJPS,
		BatchJobsPerS:    batchJPS,
		BatchVsCompiled:  batchJPS / scalarJPS,
		NativeJobsPerS:   nativeJPS,
		NativeVsCompiled: nativeJPS / scalarJPS,
	}, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
}
