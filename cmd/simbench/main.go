// Command simbench measures the simulation engines and writes a
// machine-readable BENCH_sim.json so the performance trajectory can be
// tracked across changes.
//
// Usage:
//
//	simbench [-out BENCH_sim.json] [-workers N] [-seed N] [-reps N] [-cachedir dir]
//
// It reports three things:
//
//  1. engine throughput (Mevals/s, ns/cycle) for all three engines —
//     interp, compiled, event — on the Toy design and on every
//     benchmark of the suite, with per-design speedup ratios,
//  2. CollectTraces wall-clock swept across worker counts
//     (1, 2, 4, ... up to GOMAXPROCS),
//  3. the wall-clock of warming the full (quick) experiment lab.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/rtl"
	"repro/internal/suite"
	"repro/internal/testdesigns"
	"repro/internal/tracecache"
)

// EngineResult is one engine's throughput on one design.
type EngineResult struct {
	Engine     string  `json:"engine"`
	Cycles     uint64  `json:"cycles"`
	Seconds    float64 `json:"seconds"`
	MevalsPerS float64 `json:"mevals_per_s"`
	NsPerCycle float64 `json:"ns_per_cycle"`
}

// DesignResult groups the three engines' numbers on one design plus
// the headline ratios.
type DesignResult struct {
	Design  string         `json:"design"`
	Nodes   int            `json:"nodes"`
	Engines []EngineResult `json:"engines"`
	// Speedup ratios in Mevals/s (equivalently wall-clock, same work).
	CompiledVsInterp float64 `json:"compiled_vs_interp"`
	EventVsCompiled  float64 `json:"event_vs_compiled"`
	EventVsInterp    float64 `json:"event_vs_interp"`
}

// TraceResult reports the job fan-out measurement at one worker count.
type TraceResult struct {
	Benchmark string  `json:"benchmark"`
	Jobs      int     `json:"jobs"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	// Speedup is relative to the 1-worker entry of the sweep.
	Speedup float64 `json:"speedup"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Generated       string         `json:"generated"`
	MaxWorkers      int            `json:"max_workers"`
	Designs         []DesignResult `json:"designs"`
	WorkerSweep     []TraceResult  `json:"worker_sweep"`
	SuiteWallclockS float64        `json:"suite_wallclock_s"`
}

// engineOrder fixes the measurement and report order; interp first so
// every ratio reads engines[i] vs engines[0].
var engineOrder = []rtl.Engine{rtl.EngineInterp, rtl.EngineCompiled, rtl.EngineEvent}

// measurePasses splits each engine measurement into this many timed
// passes and reports the fastest one, so a transient background blip
// hitting one engine's slice of wall-clock does not skew the ratios.
const measurePasses = 3

// measure runs fn reps times in measurePasses timed passes and
// returns the cycles and seconds of the fastest pass.
func measure(reps int, fn func() (uint64, error)) (uint64, float64, error) {
	per := reps / measurePasses
	if per < 1 {
		per = 1
	}
	var bestCycles uint64
	bestSecs := 0.0
	for p := 0; p < measurePasses; p++ {
		var cycles uint64
		start := time.Now() //detlint:allow simbench measures wall-clock throughput by design
		for i := 0; i < per; i++ {
			c, err := fn()
			if err != nil {
				return 0, 0, err
			}
			cycles += c
		}
		secs := time.Since(start).Seconds()
		if bestSecs == 0 || secs*float64(bestCycles) < bestSecs*float64(cycles) {
			bestCycles, bestSecs = cycles, secs
		}
	}
	return bestCycles, bestSecs, nil
}

// measureDesign runs one job on a design under all three engines.
func measureDesign(design string, m *rtl.Module, reps int,
	runner func(*rtl.Sim) func() (uint64, error)) (DesignResult, error) {
	dr := DesignResult{Design: design, Nodes: m.NumNodes()}
	p := rtl.Compile(m)
	for _, eng := range engineOrder {
		var s *rtl.Sim
		switch eng {
		case rtl.EngineInterp:
			s = rtl.NewInterpSim(m)
		case rtl.EngineCompiled:
			s = p.NewSim()
		case rtl.EngineEvent:
			s = p.NewEventSim()
		}
		cycles, secs, err := measure(reps, runner(s))
		if err != nil {
			return dr, fmt.Errorf("%s/%s: %w", design, eng, err)
		}
		dr.Engines = append(dr.Engines, EngineResult{
			Engine:     string(eng),
			Cycles:     cycles,
			Seconds:    secs,
			MevalsPerS: float64(cycles*uint64(m.NumNodes())) / secs / 1e6,
			NsPerCycle: secs * 1e9 / float64(cycles),
		})
	}
	interp, compiled, event := dr.Engines[0].MevalsPerS, dr.Engines[1].MevalsPerS, dr.Engines[2].MevalsPerS
	dr.CompiledVsInterp = compiled / interp
	dr.EventVsCompiled = event / compiled
	dr.EventVsInterp = event / interp
	return dr, nil
}

func run() error {
	out := flag.String("out", "BENCH_sim.json", "output path for the JSON report")
	workers := flag.Int("workers", 0, "max parallel job-simulation workers for the sweep (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "workload generation seed")
	reps := flag.Int("reps", 60, "jobs per engine measurement")
	cacheDir := flag.String("cachedir", os.Getenv("REPRO_CACHE_DIR"),
		"persistent trace cache directory (default: $REPRO_CACHE_DIR; empty disables)")
	flag.Parse()

	if *cacheDir != "" {
		c, err := tracecache.Open(*cacheDir)
		if err != nil {
			return err
		}
		core.SetTraceCache(c)
	}
	maxWorkers := *workers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	rep := Report{Generated: time.Now().UTC().Format(time.RFC3339), MaxWorkers: maxWorkers} //detlint:allow simbench measures wall-clock throughput by design

	// 1. Engine throughput: Toy plus every benchmark, three engines each.
	toy := testdesigns.Toy()
	items := make([]uint64, 100)
	for i := range items {
		items[i] = testdesigns.ToyItem(i%2 == 0, 20)
	}
	toyJob := testdesigns.ToyJob(items)
	dr, err := measureDesign("toy", toy.M, *reps, func(s *rtl.Sim) func() (uint64, error) {
		return func() (uint64, error) {
			s.Reset()
			if err := s.LoadMem("in", toyJob); err != nil {
				return 0, err
			}
			return s.Run(1 << 20)
		}
	})
	if err != nil {
		return err
	}
	rep.Designs = append(rep.Designs, dr)
	for _, spec := range suite.All() {
		spec := spec
		m := spec.Build()
		job := spec.TestJobs(3)[0]
		dr, err := measureDesign(spec.Name, m, *reps, func(s *rtl.Sim) func() (uint64, error) {
			return func() (uint64, error) { return accel.RunJob(s, job, spec.MaxTicks) }
		})
		if err != nil {
			return err
		}
		rep.Designs = append(rep.Designs, dr)
	}

	// 2. CollectTraces fan-out: sweep worker counts 1, 2, 4, ...
	spec, err := suite.ByName("stencil")
	if err != nil {
		return err
	}
	pred, err := core.Train(spec, core.Options{Seed: *seed})
	if err != nil {
		return err
	}
	jobs := spec.TestJobs(*seed + 1)
	counts := []int{}
	for w := 1; w < maxWorkers; w *= 2 {
		counts = append(counts, w)
	}
	counts = append(counts, maxWorkers)
	// The sweep times real simulation: detach the cache so every pass
	// actually runs RTL, then restore it for the lab warm-up below.
	sweepCache := core.TraceCache()
	core.SetTraceCache(nil)
	var oneWorkerS float64
	for _, w := range counts {
		core.SetWorkers(w)
		start := time.Now() //detlint:allow simbench measures wall-clock throughput by design
		if _, err := pred.CollectTraces(jobs); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		if w == 1 {
			oneWorkerS = secs
		}
		rep.WorkerSweep = append(rep.WorkerSweep, TraceResult{
			Benchmark: spec.Name,
			Jobs:      len(jobs),
			Workers:   w,
			Seconds:   secs,
			Speedup:   oneWorkerS / secs,
		})
	}
	core.SetWorkers(*workers)
	core.SetTraceCache(sweepCache)

	// 3. Full quick-lab warm-up wall-clock (train + trace all seven
	// benchmarks), the end-to-end number the experiments feel.
	lab := exp.NewLab(*seed)
	lab.Quick = true
	start := time.Now() //detlint:allow simbench measures wall-clock throughput by design
	if err := lab.Warm(); err != nil {
		return err
	}
	rep.SuiteWallclockS = time.Since(start).Seconds()

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	twoX := 0
	for _, d := range rep.Designs {
		if d.Design != "toy" && d.EventVsCompiled >= 2 {
			twoX++
		}
	}
	last := rep.WorkerSweep[len(rep.WorkerSweep)-1]
	fmt.Printf("simbench: event>=2x compiled on %d/%d benchmarks, traces %.2fx with %d workers, quick suite %.1fs -> %s\n",
		twoX, len(rep.Designs)-1, last.Speedup, last.Workers, rep.SuiteWallclockS, *out)
	fmt.Printf("jobs simulated: %d\n", core.SimulatedJobs())
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
}
