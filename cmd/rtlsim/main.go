// Command rtlsim simulates a Verilog design with the repro rtl engine:
// load memory images, run to the done signal, optionally dump a VCD
// waveform for GTKWave.
//
// Usage:
//
//	rtlsim [-max N] [-vcd out.vcd] [-mem name=v0,v1,...] design.v
//
// The -mem flag repeats; each loads a scratchpad by name with decimal
// word values before the run. Example:
//
//	go run ./cmd/rtlsim -vcd fig8.vcd \
//	    -mem work=3,51,0,37 examples/verilogflow/fig8.v
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/rtl"

	// Register the suite's pre-generated native simulators so
	// -engine native resolves them for matching netlists.
	_ "repro/internal/rtl/native"

	"repro/internal/verilog"
)

// memFlags collects repeated -mem arguments.
type memFlags map[string][]uint64

func (m memFlags) String() string { return fmt.Sprintf("%d memories", len(m)) }

func (m memFlags) Set(s string) error {
	name, list, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=v0,v1,..., got %q", s)
	}
	var words []uint64
	if list != "" {
		for _, tok := range strings.Split(list, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(tok), 0, 64)
			if err != nil {
				return fmt.Errorf("bad word %q: %v", tok, err)
			}
			words = append(words, v)
		}
	}
	m[name] = words
	return nil
}

func main() {
	maxCycles := flag.Uint64("max", 1<<20, "cycle limit")
	vcdPath := flag.String("vcd", "", "write a VCD waveform here")
	engine := flag.String("engine", "", "RTL engine: compiled, event, interp, batch, or native (default: compiled, or $REPRO_ENGINE)")
	mems := memFlags{}
	flag.Var(mems, "mem", "load a memory: name=v0,v1,... (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rtlsim [-engine e] [-max N] [-vcd out.vcd] [-mem name=v0,v1,...] design.v")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := verilog.ParseAndElaborate(string(src))
	if err != nil {
		fatal(err)
	}
	eng := rtl.DefaultEngine()
	if *engine != "" {
		if eng, err = rtl.ParseEngine(*engine); err != nil {
			fatal(err)
		}
	}
	if eng == rtl.EngineBatch && *vcdPath == "" {
		// One lane of the batch engine: same observables as a scalar
		// run, exercising the bit-sliced data layout end to end. VCD
		// dumps need per-cycle scalar probing, so -vcd falls back to
		// the compiled engine below.
		runBatchLane(m, mems, *maxCycles)
		return
	}
	sim := rtl.NewSimEngine(m, eng)
	for name, data := range mems { //detlint:allow each iteration loads a distinct memory; order-independent
		if err := sim.LoadMem(name, data); err != nil {
			fatal(err)
		}
	}

	var ticks uint64
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		v := rtl.NewVCDWriter(f, m, nil)
		ticks, err = rtl.RunWithVCD(sim, v, *maxCycles)
		if err != nil {
			fatal(err)
		}
	} else {
		ticks, err = sim.Run(*maxCycles)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%s finished in %d cycles\n", m.Name, ticks)
	for ri := range m.Regs {
		fmt.Printf("  %-24s = %d\n", m.Regs[ri].Name, sim.RegValue(ri))
	}
}

// runBatchLane simulates the design as lane 0 of a 1-lane BatchSim
// and prints the same summary the scalar path does.
func runBatchLane(m *rtl.Module, mems memFlags, maxCycles uint64) {
	bs := rtl.NewBatchSim(m, 1)
	for name, data := range mems { //detlint:allow each iteration loads a distinct memory; order-independent
		if err := bs.LoadMem(0, name, data); err != nil {
			fatal(err)
		}
	}
	if err := bs.Run(maxCycles); err != nil {
		fatal(err)
	}
	fmt.Printf("%s finished in %d cycles\n", m.Name, bs.LaneCycles(0))
	for ri := range m.Regs {
		fmt.Printf("  %-24s = %d\n", m.Regs[ri].Name, bs.RegValue(0, ri))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rtlsim: %v\n", err)
	os.Exit(1)
}
