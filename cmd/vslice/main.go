// Command vslice runs the paper's offline flow on a Verilog source
// file: parse → detect FSMs and counters → instrument features → slice
// — and writes the generated predictor slice back out as Verilog.
//
// Usage:
//
//	vslice [-o slice.v] [-report] design.v
//
// The input module must use the supported synthesizable subset (see
// package repro/internal/verilog) and have an output named done. With
// no model in the loop, vslice keeps every detected feature; feed the
// design through the full training flow (package core) to slice only
// the features a trained model selects.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/instrument"
	"repro/internal/rtl"
	"repro/internal/slice"
	"repro/internal/verilog"
)

func main() {
	out := flag.String("o", "", "write the slice Verilog here (default: stdout)")
	report := flag.Bool("report", true, "print the detection report to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vslice [-o slice.v] design.v")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := verilog.ParseAndElaborate(string(src))
	if err != nil {
		fatal(err)
	}
	ins, err := instrument.Instrument(m)
	if err != nil {
		fatal(err)
	}
	if *report {
		a := ins.Analysis
		fmt.Fprintf(os.Stderr, "%s: %d nodes, %d registers\n", m.Name, len(m.Nodes), len(m.Regs))
		fmt.Fprintf(os.Stderr, "detected %d FSM(s), %d counter(s), %d wait state(s)\n",
			len(a.FSMs), len(a.Counters), len(a.WaitStates))
		for _, f := range ins.Features {
			fmt.Fprintf(os.Stderr, "  feature %s\n", f.Name)
		}
	}
	keep := make([]int, len(ins.Features))
	for i := range keep {
		keep[i] = i
	}
	sl, err := slice.Slice(ins, keep, slice.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	if *report {
		full := rtl.Stats(m)
		ss := rtl.Stats(sl.M)
		fmt.Fprintf(os.Stderr, "slice: %d nodes, %d registers, %.1f%% of the design's logic\n",
			ss.Nodes, ss.Regs, 100*ss.LogicArea()/full.LogicArea())
		fmt.Fprintf(os.Stderr, "elided %d counter wait(s), approximated %d data wait(s)\n",
			sl.ElidedWaits, sl.ApproxWaits)
	}
	text := verilog.Emit(sl.M)
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vslice: %v\n", err)
	os.Exit(1)
}
